"""Calling parameters and genotype priors for the Bayesian model.

SOAPsnp scores the ten unordered diploid genotypes with
``posterior(g) ∝ prior(g) * likelihood(g)``.  The prior at a site with
reference base R and per-site polymorphism rate r (from the known-SNP file
for dbSNP sites, otherwise the novel rate) is:

* hom-ref (R,R): ``1 - r``
* het (R,x):     ``r * het_fraction * w(x)``
* hom-alt (x,x): ``r * hom_fraction * w(x)``
* non-ref het (x,y): ``r * other_fraction / 3``

where ``w(x)`` favors transitions over transversions with ratio ``titv``
(``w`` sums to one over the three alternative alleles).  These weights are
the unspecified-in-the-paper constants documented in DESIGN.md; they are
shared verbatim by the baseline and GSNP so the §IV-G consistency property
is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import GENOTYPES, N_BASES, N_GENOTYPES, TRANSITIONS
from ..stats.tables import DEFAULT_PCR_DEPENDENCY, dependency_penalty_table


@dataclass(frozen=True)
class CallingParams:
    """Tunable parameters of the SNP-calling model."""

    #: Read length; bounds the coord dimension (must be <= 256).
    read_len: int = 100
    #: Quality dependency decay for repeated same-coordinate observations.
    pcr_dependency: float = DEFAULT_PCR_DEPENDENCY
    #: Prior polymorphism rate for sites absent from the known-SNP file.
    novel_rate: float = 1e-3
    #: Transition/transversion prior ratio.
    titv: float = 4.0
    #: Share of the polymorphism prior mass given to ref/alt hets.
    het_fraction: float = 0.80
    #: Share given to hom-alt genotypes.
    hom_fraction: float = 0.15
    #: Share given to hets between two non-reference alleles.
    other_fraction: float = 0.05
    #: Pseudo-count weight blending the theoretical error model into the
    #: empirically calibrated p_matrix.
    calibration_pseudo: float = 20.0
    #: Maximum consensus quality reported.
    max_quality: int = 99

    def __post_init__(self) -> None:
        if not 0 < self.read_len <= 256:
            raise ValueError("read_len must be in 1..256")
        total = self.het_fraction + self.hom_fraction + self.other_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError("prior fractions must sum to 1")
        if not 0.0 < self.novel_rate < 1.0:
            raise ValueError("novel_rate must be in (0,1)")

    def penalty_table(self) -> np.ndarray:
        """The host-computed dependency penalty table (§IV-G log_table)."""
        return dependency_penalty_table(pcr_dependency=self.pcr_dependency)


def allele_weights(ref: int, titv: float) -> np.ndarray:
    """Prior weight of each alternative allele given the reference base.

    Returns a length-4 array; the reference slot is 0, the transition
    partner carries ``titv / (titv + 2)``, each transversion
    ``1 / (titv + 2)``.
    """
    w = np.zeros(N_BASES)
    for x in range(N_BASES):
        if x == ref:
            continue
        w[x] = titv if (ref, x) in TRANSITIONS else 1.0
    return w / w.sum()


def genotype_log_priors(
    ref_bases: np.ndarray, rates: np.ndarray, params: CallingParams
) -> np.ndarray:
    """log10 prior over the 10 genotypes for each site.

    Parameters
    ----------
    ref_bases:
        Reference base code per site, shape ``(n,)``.
    rates:
        Per-site polymorphism prior rate, shape ``(n,)``.

    Returns
    -------
    ``(n, 10)`` float64 array of log10 priors (columns follow
    :data:`~repro.constants.GENOTYPES` order).
    """
    ref_bases = np.asarray(ref_bases)
    rates = np.asarray(rates, dtype=np.float64)
    n = ref_bases.size
    # Precompute the (4 ref bases x 10 genotypes) prior template once, then
    # gather per site — identical math for every implementation.
    template = np.empty((N_BASES, N_GENOTYPES), dtype=np.float64)
    for r in range(N_BASES):
        w = allele_weights(r, params.titv)
        for gi, (a1, a2) in enumerate(GENOTYPES):
            if a1 == r and a2 == r:
                template[r, gi] = np.nan  # filled per-site from (1 - rate)
            elif a1 == r or a2 == r:
                x = a2 if a1 == r else a1
                template[r, gi] = params.het_fraction * w[x]
            elif a1 == a2:
                template[r, gi] = params.hom_fraction * w[a1]
            else:
                template[r, gi] = params.other_fraction / 3.0
    pri = template[ref_bases]  # (n, 10)
    pri = pri * rates[:, None]
    hom_ref_col = np.array(
        [GENOTYPES.index((r, r)) for r in range(N_BASES)]
    )[ref_bases]
    pri[np.arange(n), hom_ref_col] = 1.0 - rates
    with np.errstate(divide="ignore"):
        return np.log10(pri)
