"""Posterior genotype calling and per-site output statistics.

Combines the genotype log-likelihoods with the priors of
:mod:`repro.soapsnp.model`, picks the consensus genotype, and assembles the
17-column :class:`~repro.formats.cns.ResultTable`.  Both pipelines call
these exact functions on their (identical) likelihoods, so their outputs
are bitwise equal.
"""

from __future__ import annotations

import numpy as np

from ..constants import GENOTYPES, N_BASES, N_GENOTYPES
from ..formats.cns import NO_BASE, ResultTable
from ..seqsim.datasets import KnownSnpPrior
from ..stats.ranksum import rank_sum_pvalue
from .model import CallingParams, genotype_log_priors
from .observe import Observations


def call_posterior(
    type_likely: np.ndarray,
    ref_codes: np.ndarray,
    rates: np.ndarray,
    params: CallingParams,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Posterior call for every site.

    Returns ``(genotype_index, quality, log_posterior)`` where quality is
    the Phred-scaled ratio of best to second-best posterior, capped at
    ``params.max_quality``.
    """
    log_prior = genotype_log_priors(ref_codes, rates, params)
    log_post = log_prior + type_likely
    order = np.argsort(log_post, axis=1, kind="stable")
    best = order[:, -1]
    second = order[:, -2]
    n = type_likely.shape[0]
    lp_best = log_post[np.arange(n), best]
    lp_second = log_post[np.arange(n), second]
    quality = np.clip(
        np.rint(10.0 * (lp_best - lp_second)), 0, params.max_quality
    ).astype(np.uint8)
    return best.astype(np.uint8), quality, log_post


def _rounded_mean(total: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Integer mean with half-up rounding, 0 where count is 0."""
    count_safe = np.maximum(count, 1)
    return ((2 * total + count_safe) // (2 * count_safe)).astype(np.uint8)


def summarize_window(
    obs: Observations,
    window_start: int,
    ref_codes: np.ndarray,
    prior: KnownSnpPrior,
    type_likely: np.ndarray,
    params: CallingParams,
    chrom: str,
) -> ResultTable:
    """Build the 17-column rows for one window.

    ``ref_codes`` holds the reference base of each window site;
    ``type_likely`` the (n_sites, 10) genotype log-likelihoods.
    """
    n = obs.n_sites
    positions = window_start + np.arange(n, dtype=np.int64)

    # --- allele statistics -------------------------------------------------
    count_all = np.zeros((n, N_BASES), dtype=np.int64)
    count_uni = np.zeros((n, N_BASES), dtype=np.int64)
    qual_sum_uni = np.zeros((n, N_BASES), dtype=np.int64)
    hits_sum = np.zeros(n, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    if obs.n_obs:
        np.add.at(count_all, (obs.site, obs.base), 1)
        np.add.at(depth, obs.site, 1)
        np.add.at(hits_sum, obs.site, obs.hits.astype(np.int64))
        u = obs.unique
        np.add.at(count_uni, (obs.site[u], obs.base[u]), 1)
        np.add.at(
            qual_sum_uni, (obs.site[u], obs.base[u]), obs.score[u].astype(np.int64)
        )

    # Best and second-best allele by unique count, ties broken by quality
    # mass then base code (deterministic in every implementation).
    rank_key = (
        count_uni.astype(np.float64) * 1e9
        + qual_sum_uni.astype(np.float64)
        - np.arange(N_BASES)[None, :] * 1e-3
    )
    order = np.argsort(rank_key, axis=1, kind="stable")
    best_base = order[:, -1].astype(np.uint8)
    second_base = order[:, -2].astype(np.uint8)
    rows = np.arange(n)
    cu_best = count_uni[rows, best_base]
    ca_best = count_all[rows, best_base]
    cu_second = count_uni[rows, second_base]
    ca_second = count_all[rows, second_base]
    aq_best = _rounded_mean(qual_sum_uni[rows, best_base], cu_best)
    aq_second = _rounded_mean(qual_sum_uni[rows, second_base], cu_second)

    no_best = cu_best == 0
    best_base = np.where(no_best, ref_codes, best_base).astype(np.uint8)
    no_second = cu_second == 0
    second_out = np.where(no_second, NO_BASE, second_base).astype(np.uint8)
    aq_second = np.where(no_second, 0, aq_second).astype(np.uint8)

    # --- posterior call ------------------------------------------------------
    rates = prior.rate_at(positions, params.novel_rate)
    genotype, quality, _ = call_posterior(type_likely, ref_codes, rates, params)

    # --- rank-sum test on best vs second allele qualities -------------------
    rank_sum = np.ones(n, dtype=np.float32)
    het_sites = np.nonzero((cu_second > 0) & (cu_best > 0))[0]
    if het_sites.size and obs.n_obs:
        u_idx = np.nonzero(obs.unique)[0]
        u_site = obs.site[u_idx]
        u_base = obs.base[u_idx]
        u_score = obs.score[u_idx]
        # Group unique observations by site for fast per-site slicing.
        site_order = np.argsort(u_site, kind="stable")
        sorted_site = u_site[site_order]
        starts = np.searchsorted(sorted_site, np.arange(n), "left")
        ends = np.searchsorted(sorted_site, np.arange(n), "right")
        for s in het_sites:
            sl = site_order[starts[s] : ends[s]]
            b = u_base[sl]
            q = u_score[sl]
            x = q[b == best_base[s]]
            y = q[b == second_base[s]]
            rank_sum[s] = rank_sum_pvalue(x, y)
    rank_sum = np.round(rank_sum.astype(np.float64), 2).astype(np.float32)

    copy_num = np.zeros(n, dtype=np.float64)
    nz = depth > 0
    copy_num[nz] = hits_sum[nz] / depth[nz]
    copy_num = np.round(copy_num, 2).astype(np.float32)

    known = np.zeros(n, dtype=np.uint8)
    if prior.n_sites:
        idx = np.searchsorted(prior.positions, positions)
        idx_c = np.minimum(idx, prior.n_sites - 1)
        known[
            (idx < prior.n_sites) & (prior.positions[idx_c] == positions)
        ] = 1

    return ResultTable(
        chrom=chrom,
        pos=positions + 1,
        ref_base=ref_codes.astype(np.uint8),
        genotype=genotype,
        quality=quality,
        best_base=best_base,
        avg_qual_best=np.where(no_best, 0, aq_best).astype(np.uint8),
        count_uni_best=cu_best.astype(np.uint16),
        count_all_best=ca_best.astype(np.uint16),
        second_base=second_out,
        avg_qual_second=aq_second,
        count_uni_second=np.where(no_second, 0, cu_second).astype(np.uint16),
        count_all_second=np.where(no_second, 0, ca_second).astype(np.uint16),
        depth=np.minimum(depth, 65535).astype(np.uint16),
        rank_sum=rank_sum,
        copy_num=copy_num,
        known_snp=known,
    )


def is_snp_call(table: ResultTable) -> np.ndarray:
    """Boolean mask: consensus genotype differs from hom-reference."""
    hom_ref = np.array(
        [GENOTYPES.index((r, r)) for r in range(N_BASES)], dtype=np.uint8
    )
    return table.genotype != hom_ref[table.ref_base]
