"""The CPU SOAPsnp pipeline (Figure 1), with per-component accounting.

Seven components run per the paper's workflow: ``cal_p_matrix`` once, then
per window ``read_site -> counting -> likelihood -> posterior -> output ->
recycle``.  The functional result is exact; the *cost* of the dense
representation (the 131,072-cell ``base_occ`` scan per site in likelihood
and recycle, Formula 1) is charged to the event records rather than
executed, because actually scanning zeros in Python would only prove that
Python is slow.  Event counts are the paper's own analytical quantities,
so the modeled breakdown reproduces Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..align.records import AlignmentBatch
from ..bench.events import PhaseRecord, RunProfile
from ..constants import BASE_OCC_SIZE, DEFAULT_WINDOW_SOAPSNP, N_GENOTYPES
from ..formats.cns import ResultTable, format_rows
from ..formats.soap import soap_line_bytes
from ..formats.window import WindowReader
from ..core.prefetch import prefetched_windows
from ..seqsim.datasets import SimulatedDataset
from .base_occ import nonzero_counts
from .likelihood import window_type_likely
from .model import CallingParams
from .observe import extract_observations
from .p_matrix import build_p_matrix, flatten_p_matrix
from .posterior import summarize_window


@dataclass
class SoapsnpResult:
    """Output of one SOAPsnp run."""

    table: ResultTable
    profile: RunProfile
    #: Per-site non-zero base_occ cell counts (Figure 4b), when collected.
    nnz: Optional[np.ndarray] = None
    #: Total plain-text output bytes.
    output_bytes: int = 0
    p_matrix: Optional[np.ndarray] = None
    extras: dict = field(default_factory=dict)


@dataclass
class SoapsnpCalibration:
    """Product of SOAPsnp's ``cal_p_matrix`` pass, shareable across shards."""

    params: CallingParams
    p_matrix: np.ndarray
    pm_flat: np.ndarray
    penalty: np.ndarray
    input_bytes: int
    total_reads: int
    record: PhaseRecord

    def strip(self) -> "SoapsnpCalibration":
        """Interface parity with the GSNP calibration (nothing to drop)."""
        return self


class SoapsnpPipeline:
    """Single-threaded dense-representation baseline caller."""

    def __init__(
        self,
        params: Optional[CallingParams] = None,
        window_size: int = DEFAULT_WINDOW_SOAPSNP,
        collect_nnz: bool = False,
        prefetch: bool = True,
    ) -> None:
        self.params = params
        self.window_size = window_size
        self.collect_nnz = collect_nnz
        #: Decode window N+1 on a background thread while N computes.
        self.prefetch = prefetch

    def calibrate(
        self, dataset: SimulatedDataset, reads: Optional[AlignmentBatch] = None
    ) -> SoapsnpCalibration:
        """The ``cal_p_matrix`` pass: one full read of the input."""
        if reads is None:
            reads = AlignmentBatch.from_read_set(dataset.reads)
        params = self.params or CallingParams(read_len=reads.read_len or 100)
        input_bytes = reads.n_reads * soap_line_bytes(reads.read_len)
        rec = PhaseRecord(name="cal_p_matrix")
        t0 = time.perf_counter()
        p_matrix = build_p_matrix(reads, dataset.reference, params)
        pm_flat = flatten_p_matrix(p_matrix)
        penalty = params.penalty_table()
        rec.wall += time.perf_counter() - t0
        rec.disk.read_bytes += input_bytes
        rec.disk.parsed_bytes += input_bytes
        rec.cpu.instructions += reads.n_reads * reads.read_len * 4
        return SoapsnpCalibration(
            params=params,
            p_matrix=p_matrix,
            pm_flat=pm_flat,
            penalty=penalty,
            input_bytes=input_bytes,
            total_reads=reads.n_reads,
            record=rec,
        )

    def run(
        self,
        dataset: SimulatedDataset,
        output_path=None,
        *,
        site_range: Optional[tuple[int, int]] = None,
        calibration: Optional[SoapsnpCalibration] = None,
        reads: Optional[AlignmentBatch] = None,
    ) -> SoapsnpResult:
        """Call SNPs over a dataset; optionally write the .cns text file.

        ``site_range``/``calibration``/``reads`` have the same contract as
        :meth:`repro.core.pipeline.GsnpPipeline.run` — they let the sharded
        executor run one shard of whole windows with a shared calibration.
        """
        if reads is None:
            reads = AlignmentBatch.from_read_set(dataset.reads)
        profile = RunProfile(pipeline="soapsnp")

        if calibration is None:
            calibration = self.calibrate(dataset, reads=reads)
            profile.records["cal_p_matrix"] = calibration.record
        params = calibration.params
        pm_flat = calibration.pm_flat
        penalty = calibration.penalty

        start, stop = site_range if site_range is not None else (0, dataset.n_sites)
        reader = WindowReader(
            reads, dataset.n_sites, self.window_size, start=start, stop=stop
        )
        windows = prefetched_windows(reader, self.prefetch)
        tables: list[ResultTable] = []
        nnz_parts: list[np.ndarray] = [] if self.collect_nnz else None
        output_bytes = 0
        out_f = open(output_path, "wb") if output_path is not None else None
        try:
            for window in windows:
                # ---- read_site: second, OS-buffered pass -------------------
                t0 = time.perf_counter()
                win_reads = window.reads
                rec = profile.phase("read_site")
                rec.wall += time.perf_counter() - t0
                win_bytes = win_reads.n_reads * soap_line_bytes(reads.read_len)
                rec.disk.read_buffered_bytes += win_bytes
                rec.cpu.instructions += win_reads.n_reads * 4

                # ---- counting: fill base_occ (random stores) ----------------
                t0 = time.perf_counter()
                obs = extract_observations(window)
                if self.collect_nnz:
                    nnz_parts.append(nonzero_counts(obs))
                rec = profile.phase("counting")
                rec.wall += time.perf_counter() - t0
                m = obs.n_obs
                rec.cpu.random_accesses += 2 * m
                rec.cpu.instructions += 10 * m

                # ---- likelihood: Algorithm 1 over the dense matrix ----------
                t0 = time.perf_counter()
                type_likely = window_type_likely(obs, pm_flat, penalty)
                rec = profile.phase("likelihood")
                rec.wall += time.perf_counter() - t0
                mc = int(obs.counted.sum())
                rec.cpu.seq_read_bytes += window.n_sites * BASE_OCC_SIZE
                rec.cpu.random_accesses += 2 * N_GENOTYPES * mc
                rec.cpu.log_calls += N_GENOTYPES * mc
                rec.cpu.instructions += 2 * N_GENOTYPES * mc

                # ---- posterior ---------------------------------------------
                t0 = time.perf_counter()
                ref_codes = dataset.reference.codes[window.start : window.end]
                table = summarize_window(
                    obs,
                    window.start,
                    ref_codes,
                    dataset.prior,
                    type_likely,
                    params,
                    chrom=dataset.reference.name,
                )
                rec = profile.phase("posterior")
                rec.wall += time.perf_counter() - t0
                rec.cpu.instructions += window.n_sites * 100
                rec.cpu.random_accesses += window.n_sites * 5

                # ---- output: plain-text rows --------------------------------
                t0 = time.perf_counter()
                text = format_rows(table)
                if out_f is not None:
                    out_f.write(text)
                rec = profile.phase("output")
                rec.wall += time.perf_counter() - t0
                output_bytes += len(text)
                rec.disk.write_bytes += len(text)
                rec.disk.formatted_bytes += len(text)
                tables.append(table)

                # ---- recycle: re-zero the dense buffers ---------------------
                t0 = time.perf_counter()
                rec = profile.phase("recycle")
                rec.wall += time.perf_counter() - t0
                rec.cpu.seq_write_bytes += window.n_sites * BASE_OCC_SIZE
                rec.cpu.instructions += window.n_sites
        finally:
            if out_f is not None:
                out_f.close()

        full = tables[0]
        for t in tables[1:]:
            full = full.concat(t)
        return SoapsnpResult(
            table=full,
            profile=profile,
            nnz=np.concatenate(nnz_parts) if self.collect_nnz else None,
            output_bytes=output_bytes,
            p_matrix=calibration.p_matrix,
            extras={"input_bytes": calibration.input_bytes},
        )
