"""The dense per-site aligned-base matrix ``base_occ`` (Section IV-A/B).

For each site SOAPsnp keeps a 4 x 64 x 256 x 2 byte matrix
(base x score x coord x strand) of occurrence counts — 131,072 cells of
which only tens are non-zero at realistic depth (Figure 4b), the central
inefficiency GSNP's sparse ``base_word`` removes.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    BASE_OCC_SIZE,
    MAX_READ_LEN,
    N_BASES,
    N_SCORES,
    N_STRANDS,
)
from .observe import Observations


def base_occ_cell_index(
    base: np.ndarray, score: np.ndarray, coord: np.ndarray, strand: np.ndarray
) -> np.ndarray:
    """Flat cell index ``base<<15 | score<<9 | coord<<1 | strand``."""
    return (
        base.astype(np.int64) << 15
        | score.astype(np.int64) << 9
        | coord.astype(np.int64) << 1
        | strand.astype(np.int64)
    )


def build_base_occ(obs: Observations) -> np.ndarray:
    """Build the dense matrix for every site of a window.

    Returns a ``(n_sites, BASE_OCC_SIZE)`` uint8 array.  Beware: at the
    paper's window sizes this is the multi-gigabyte allocation whose scans
    dominate SOAPsnp's runtime — callers working at scale should prefer
    :func:`nonzero_counts` or the sparse representation.
    """
    occ = np.zeros((obs.n_sites, BASE_OCC_SIZE), dtype=np.uint8)
    sel = obs.counted
    if sel.any():
        cell = base_occ_cell_index(
            obs.base[sel], obs.score[sel], obs.coord[sel], obs.strand[sel]
        )
        flat_idx = obs.site[sel] * BASE_OCC_SIZE + cell
        np.add.at(occ.reshape(-1), flat_idx, 1)
    return occ


def build_base_occ_site(obs: Observations, site: int) -> np.ndarray:
    """Dense matrix of a single site, shaped (4, 64, 256, 2)."""
    sel = obs.counted & (obs.site == site)
    occ = np.zeros((N_BASES, N_SCORES, MAX_READ_LEN, N_STRANDS), dtype=np.uint8)
    np.add.at(
        occ,
        (obs.base[sel], obs.score[sel], obs.coord[sel], obs.strand[sel]),
        1,
    )
    return occ


def nonzero_counts(obs: Observations) -> np.ndarray:
    """Per-site number of non-zero ``base_occ`` cells (Figure 4b data).

    Equal to the number of *distinct* counted (base, score, coord, strand)
    cells at each site.
    """
    sel = np.nonzero(obs.counted)[0]
    if sel.size == 0:
        return np.zeros(obs.n_sites, dtype=np.int64)
    cell = base_occ_cell_index(
        obs.base[sel], obs.score[sel], obs.coord[sel], obs.strand[sel]
    )
    key = obs.site[sel] * BASE_OCC_SIZE + cell
    # Canonical order makes equal keys adjacent.
    new = np.concatenate([[True], key[1:] != key[:-1]])
    return np.bincount(obs.site[sel][new], minlength=obs.n_sites)


def sparsity_histogram(
    nnz: np.ndarray, bin_edges: tuple[int, ...] = (0, 1, 8, 16, 32, 64, 128)
) -> dict[str, float]:
    """Percentage of sites per non-zero-count bin (Figure 4b)."""
    edges = list(bin_edges) + [np.inf]
    total = max(nnz.size, 1)
    out: dict[str, float] = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (nnz >= lo) & (nnz < hi)
        label = f"[{lo},{'inf' if hi == np.inf else int(hi)})"
        out[label] = 100.0 * float(mask.sum()) / total
    return out
