"""Quality-calibration matrix ``p_matrix`` (the ``cal_p_matrix`` component).

``p_matrix[q, coord, allele, base]`` is the calibrated probability of
*observing* ``base`` when the true allele is ``allele``, the sequencer
reported quality ``q`` at machine cycle ``coord``.  SOAPsnp estimates it
from the data itself in a first pass over the whole input (which is why the
input file is read twice, Section V-A): aligned bases are counted against
the reference allele, then blended with the theoretical Phred error model
``P(err) = 10^(-q/10)`` (uniform over the three wrong bases) via additive
smoothing.

The matrix is built once on the host — by both pipelines, with the same
code — and in GSNP it is expanded into ``new_p_matrix``
(:mod:`repro.core.score_table`).
"""

from __future__ import annotations

import numpy as np

from ..align.records import AlignmentBatch
from ..constants import (
    MAX_READ_LEN,
    N_BASES,
    N_SCORES,
    P_ALLELE_SHIFT,
    P_BASE_SHIFT,
    P_COORD_SHIFT,
    P_Q_SHIFT,
)
from ..seqsim.reference import Reference
from .model import CallingParams


def theoretical_p_matrix() -> np.ndarray:
    """The pure Phred error model, shape (64, 256, 4, 4) float64."""
    q = np.arange(N_SCORES, dtype=np.float64)
    p_err = np.power(10.0, -q / 10.0)
    # Quality 0 carries no information: uniform.
    p_err[0] = 0.75
    out = np.empty((N_SCORES, MAX_READ_LEN, N_BASES, N_BASES))
    correct = 1.0 - p_err
    wrong = p_err / 3.0
    for a in range(N_BASES):
        for b in range(N_BASES):
            out[:, :, a, b] = (correct if a == b else wrong)[:, None]
    return out


def calibration_counts(
    alignments: AlignmentBatch, reference: Reference
) -> np.ndarray:
    """Count (q, coord, ref_allele, observed_base) over unique reads.

    The reference base is used as the truth proxy — the standard
    calibration assumption (the polymorphism rate is ~1e-3, so the bias is
    negligible).
    """
    counts = np.zeros((N_SCORES, MAX_READ_LEN, N_BASES, N_BASES), dtype=np.int64)
    n, read_len = alignments.n_reads, alignments.read_len
    if n == 0:
        return counts
    uniq = alignments.hits == 1
    if not uniq.any():
        return counts
    pos = alignments.pos[uniq]
    bases = alignments.bases[uniq]
    quals = alignments.quals[uniq]
    strand = alignments.strand[uniq]
    j = np.arange(read_len)
    cycle = np.where(strand[:, None] == 0, j[None, :], read_len - 1 - j[None, :])
    ref_allele = reference.codes[pos[:, None] + j[None, :]]
    np.add.at(
        counts,
        (quals.ravel(), cycle.ravel(), ref_allele.ravel(), bases.ravel()),
        1,
    )
    return counts


def build_p_matrix(
    alignments: AlignmentBatch,
    reference: Reference,
    params: CallingParams | None = None,
) -> np.ndarray:
    """Calibrate ``p_matrix`` from data + theory; rows sum to one.

    Returns shape ``(64, 256, 4, 4)`` float64; ``sum over observed base``
    of every (q, coord, allele) row is 1.
    """
    if params is None:
        params = CallingParams(read_len=alignments.read_len or 100)
    theory = theoretical_p_matrix()
    counts = calibration_counts(alignments, reference)
    pseudo = params.calibration_pseudo
    blended = counts.astype(np.float64) + pseudo * theory
    totals = blended.sum(axis=3, keepdims=True)
    return blended / totals


def p_matrix_index(
    q: np.ndarray, coord: np.ndarray, allele: np.ndarray, base: np.ndarray
) -> np.ndarray:
    """Flat Algorithm-2 index ``q<<12 | coord<<4 | allele<<2 | base``."""
    return (
        np.asarray(q, dtype=np.int64) << P_Q_SHIFT
        | np.asarray(coord, dtype=np.int64) << P_COORD_SHIFT
        | np.asarray(allele, dtype=np.int64) << P_ALLELE_SHIFT
        | np.asarray(base, dtype=np.int64) << P_BASE_SHIFT
    )


def flatten_p_matrix(p_matrix: np.ndarray) -> np.ndarray:
    """Flatten (q, coord, allele, base) to the Algorithm-2 layout."""
    if p_matrix.shape != (N_SCORES, MAX_READ_LEN, N_BASES, N_BASES):
        raise ValueError(f"unexpected p_matrix shape {p_matrix.shape}")
    return np.ascontiguousarray(p_matrix).reshape(-1)
