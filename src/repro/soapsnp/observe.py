"""Observation extraction: from aligned reads to per-site aligned bases.

Both pipelines count the *same* aligned-base observations; this module is
the single source of that multiset so the dense baseline and sparse GSNP
derive their structures (``base_occ`` / ``base_word``) from identical
inputs — a precondition of the paper's bitwise-consistency property.

Rules (SOAPsnp semantics):

* Every aligned base contributes to depth, allele counts and copy-number.
* Only *uniquely aligned* bases (``hits == 1``) enter the likelihood
  matrices and the per-allele quality statistics.
* ``coord`` is the machine cycle: ``j`` on the forward strand,
  ``read_len - 1 - j`` on the reverse strand, for forward offset ``j``.
* The 1-byte occurrence counter of ``base_occ`` caps identical
  (base, score, coord, strand) observations at 255 per site; overflow
  observations are dropped from the likelihood multiset (never happens at
  realistic depth, but the cap is part of the format).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.window import Window


@dataclass
class Observations:
    """Flat arrays of aligned-base observations within one window.

    Sorted canonically: by site, then base ascending, score *descending*,
    coord ascending, strand ascending — the iteration order of
    Algorithm 1.  ``site`` is relative to the window start.
    """

    n_sites: int
    site: np.ndarray  # int64
    base: np.ndarray  # uint8
    score: np.ndarray  # uint8
    coord: np.ndarray  # uint8 (machine cycle)
    strand: np.ndarray  # uint8
    hits: np.ndarray  # uint8
    unique: np.ndarray  # bool: hits == 1
    #: bool: observation kept in the likelihood multiset (unique and not
    #: dropped by the 255-occurrence cap).
    counted: np.ndarray
    #: Arrival position of each observation in the raw input (read-major)
    #: order — the order GSNP's counting kernel appends base_words in,
    #: before the multipass sort restores canonical order.
    arrival: np.ndarray = None

    @property
    def n_obs(self) -> int:
        return int(self.site.size)

    def counted_offsets(self) -> tuple[np.ndarray, np.ndarray]:
        """(selection, offsets) of counted observations grouped by site.

        ``selection`` indexes the counted observations in canonical order;
        ``offsets`` has ``n_sites + 1`` entries delimiting each site's
        slice of ``selection``.
        """
        sel = np.nonzero(self.counted)[0]
        counts = np.bincount(self.site[sel], minlength=self.n_sites)
        offsets = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        return sel, offsets


def extract_observations(window: Window) -> Observations:
    """Extract and canonically sort the observations of one window."""
    reads = window.reads
    n, read_len = reads.n_reads, reads.read_len
    if n == 0:
        e8 = np.empty(0, dtype=np.uint8)
        return Observations(
            n_sites=window.n_sites,
            site=np.empty(0, dtype=np.int64),
            base=e8.copy(), score=e8.copy(), coord=e8.copy(),
            strand=e8.copy(), hits=e8.copy(),
            unique=np.empty(0, dtype=bool),
            counted=np.empty(0, dtype=bool),
            arrival=np.empty(0, dtype=np.int64),
        )
    j = np.arange(read_len)
    abs_pos = reads.pos[:, None] + j[None, :]  # (n, read_len)
    in_window = (abs_pos >= window.start) & (abs_pos < window.end)
    site = (abs_pos - window.start)[in_window]
    base = reads.bases[in_window]
    score = reads.quals[in_window]
    cycle = np.where(
        reads.strand[:, None] == 0, j[None, :], read_len - 1 - j[None, :]
    )
    coord = cycle[in_window]
    strand = np.broadcast_to(reads.strand[:, None], (n, read_len))[in_window]
    hits = np.broadcast_to(reads.hits[:, None], (n, read_len))[in_window]

    # Canonical sort: site, base asc, score DESC, coord asc, strand asc.
    order = np.lexsort(
        (strand, coord, 63 - score.astype(np.int16), base, site)
    )
    arrival = np.arange(site.size, dtype=np.int64)[order]
    site = site[order]
    base = base[order]
    score = score[order]
    coord = coord.astype(np.uint8)[order]
    strand = strand[order]
    hits = hits[order]
    unique = hits == 1

    # 255-cap on identical cells: ordinal within identical
    # (site, base, score, coord, strand) among unique observations.
    counted = unique.copy()
    u = np.nonzero(unique)[0]
    if u.size:
        key = (
            site[u].astype(np.int64) << 32
            | base[u].astype(np.int64) << 24
            | score[u].astype(np.int64) << 16
            | coord[u].astype(np.int64) << 8
            | strand[u].astype(np.int64)
        )
        # Equal keys are adjacent after the canonical sort.
        change = np.concatenate([[True], key[1:] != key[:-1]])
        run_id = np.cumsum(change) - 1
        run_start = np.nonzero(change)[0]
        ordinal = np.arange(key.size) - run_start[run_id]
        counted[u[ordinal >= 255]] = False
    return Observations(
        n_sites=window.n_sites,
        site=site.astype(np.int64),
        base=base.astype(np.uint8),
        score=score.astype(np.uint8),
        coord=coord,
        strand=strand.astype(np.uint8),
        hits=hits.astype(np.uint8),
        unique=unique,
        counted=counted,
        arrival=arrival,
    )
