"""SOAPsnp baseline: the dense-representation Bayesian SNP caller (Fig. 1)."""

from .base_occ import (
    base_occ_cell_index,
    build_base_occ,
    build_base_occ_site,
    nonzero_counts,
    sparsity_histogram,
)
from .likelihood import (
    adjust_scores,
    direct_contributions,
    likelihood_site_reference,
    occurrence_ordinals,
    sequential_site_sums,
    window_type_likely,
)
from .model import CallingParams, allele_weights, genotype_log_priors
from .observe import Observations, extract_observations
from .p_matrix import (
    build_p_matrix,
    calibration_counts,
    flatten_p_matrix,
    p_matrix_index,
    theoretical_p_matrix,
)
from .pipeline import SoapsnpPipeline, SoapsnpResult
from .posterior import call_posterior, is_snp_call, summarize_window

__all__ = [
    "CallingParams",
    "Observations",
    "SoapsnpPipeline",
    "SoapsnpResult",
    "adjust_scores",
    "allele_weights",
    "base_occ_cell_index",
    "build_base_occ",
    "build_base_occ_site",
    "build_p_matrix",
    "calibration_counts",
    "call_posterior",
    "direct_contributions",
    "extract_observations",
    "flatten_p_matrix",
    "genotype_log_priors",
    "is_snp_call",
    "likelihood_site_reference",
    "nonzero_counts",
    "occurrence_ordinals",
    "p_matrix_index",
    "sequential_site_sums",
    "sparsity_histogram",
    "summarize_window",
    "theoretical_p_matrix",
    "window_type_likely",
]
