"""Full-scale extrapolation of scaled-run event counts.

Every event the pipelines record (bytes scanned, transactions issued,
logarithms evaluated, text bytes written) grows linearly in the number of
sites/reads processed, so a run on a 1/1000-scale dataset extrapolates to
the paper's full dataset by multiplying counts by the scale factor and
re-applying the cost models.  This is the same reasoning the paper itself
uses in Formula (1); the benchmarks print paper numbers, modeled
full-scale numbers, and the scaled run's measured wall time side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.events import COMPONENTS, RunProfile
from ..gpusim.spec import BGI_PLATFORM, PlatformSpec
from ..seqsim.datasets import DatasetSpec


@dataclass(frozen=True)
class FullScaleBreakdown:
    """Modeled full-scale per-component seconds for one run."""

    pipeline: str
    dataset: str
    scale_factor: float
    components: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())


def extrapolate(
    profile: RunProfile,
    spec: DatasetSpec,
    platform: PlatformSpec = BGI_PLATFORM,
) -> FullScaleBreakdown:
    """Scale a run profile to the paper's dataset size and price it."""
    scaled = profile.scaled(spec.scale_factor)
    comp = {
        name: scaled.records[name].modeled_time(platform)
        for name in COMPONENTS
        if name in scaled.records
    }
    return FullScaleBreakdown(
        pipeline=profile.pipeline,
        dataset=spec.name,
        scale_factor=spec.scale_factor,
        components=comp,
    )


#: Paper Table I: SOAPsnp per-component seconds.
TABLE1_PAPER = {
    "ch1-sim": {
        "cal_p_matrix": 258, "read_site": 101, "counting": 376,
        "likelihood": 12267, "posterior": 113, "output": 550,
        "recycle": 8214, "total": 21879,
    },
    "ch21-sim": {
        "cal_p_matrix": 31, "read_site": 12, "counting": 55,
        "likelihood": 1854, "posterior": 17, "output": 103,
        "recycle": 1603, "total": 3675,
    },
}

#: Paper Table IV: GSNP per-component seconds (speedups in the paper text).
TABLE4_PAPER = {
    "ch1-sim": {
        "cal_p_matrix": 297, "read_site": 20, "counting": 87,
        "likelihood": 60, "posterior": 16, "output": 44,
        "recycle": 3, "total": 527,
    },
    "ch21-sim": {
        "cal_p_matrix": 37, "read_site": 3, "counting": 14,
        "likelihood": 8, "posterior": 3, "output": 7,
        "recycle": 1, "total": 73,
    },
}
