"""Experiment drivers for every table and figure of the evaluation.

Each ``exp_*`` function reproduces one artifact of Section VI: it runs the
relevant pipelines/kernels on scaled Table-II replica datasets, extrapolates
event counts to full scale, and returns a structure the benchmark files
render next to the paper's numbers.  Results are cached per (dataset,
fraction) so the benchmark suite shares work.

``fraction`` further shrinks a dataset below its 1/1000 default scale while
*raising* the extrapolation factor to compensate, so full-scale modeled
numbers stay comparable no matter how small the bench run is.
"""

from __future__ import annotations

import time
from dataclasses import replace
from functools import lru_cache

import numpy as np

from ..align.records import AlignmentBatch
from ..api import JobSpec, create_pipeline, effective_window, get_engine_spec
from ..compress.columnar import encode_alignments, encode_table
from ..compress.gzipcodec import (
    GZIP_COMPRESS_BW,
    GZIP_DECOMPRESS_BW,
    gzip_compress,
)
from ..constants import BASE_OCC_SIZE
from ..core.base_word import words_from_observations
from ..core.likelihood import (
    ALL_VARIANTS,
    GsnpTables,
    gpu_dense_likelihood_counters,
    gsnp_likelihood_comp,
    gsnp_likelihood_sort,
)
from ..core.pipeline import GsnpPipeline
from ..gpusim.spec import CPU_COMPRESS_BW
from ..formats.cns import format_rows
from ..formats.soap import soap_line_bytes
from ..formats.window import Window
from ..gpusim.costmodel import CpuCostModel, CpuEvents, DiskEvents, DiskModel, GpuCostModel
from ..gpusim.device import Device
from ..gpusim.spec import BGI_PLATFORM
from ..seqsim.datasets import (
    CH1_SPEC,
    CH21_SPEC,
    DatasetSpec,
    SimulatedDataset,
    dataset_summary,
    generate_dataset,
    whole_genome_specs,
)
from ..soapsnp.base_occ import sparsity_histogram
from ..soapsnp.model import CallingParams
from ..soapsnp.observe import extract_observations
from ..soapsnp.p_matrix import build_p_matrix, flatten_p_matrix
from ..soapsnp.pipeline import SoapsnpPipeline
from ..sortnet.batch import batch_sort
from ..sortnet.cpu_sort import ParallelCpuSortModel, quicksort_per_site
from ..sortnet.multipass import multipass_sort, nonequal_sort, singlepass_sort
from .events import RunProfile
from .scale import TABLE1_PAPER, TABLE4_PAPER, extrapolate

#: Default bench fractions keep the simulated-GPU runs to a few seconds.
DEFAULT_FRACTIONS = {"ch1-sim": 0.2, "ch21-sim": 0.5}

#: Cohort batching must keep launches per fused stage (near-)independent
#: of S.  The sort/likelihood/recycle stages are exactly constant; the
#: counting and codec stages carry data-sized sub-chains (tree reduce,
#: sort passes) that grow ~logarithmically with pileup volume, so the
#: per-stage launch ratio S-vs-1 is bounded well below S — an unfused
#: per-sample loop would sit at exactly S.
LAUNCH_STAGE_RATIO_BOUND = 1.5

_SPECS = {"ch1-sim": CH1_SPEC, "ch21-sim": CH21_SPEC}


def bench_spec(name: str, fraction: float | None = None) -> DatasetSpec:
    """A further-shrunk spec whose extrapolation still hits full scale."""
    spec = _SPECS[name]
    frac = fraction if fraction is not None else DEFAULT_FRACTIONS[name]
    return replace(
        spec,
        n_sites=max(int(spec.n_sites * frac), 2000),
        scale_factor=spec.scale_factor * spec.n_sites
        / max(int(spec.n_sites * frac), 2000),
    )


@lru_cache(maxsize=8)
def bench_dataset(name: str, fraction: float | None = None) -> SimulatedDataset:
    return generate_dataset(bench_spec(name, fraction))


@lru_cache(maxsize=8)
def soapsnp_result(name: str, fraction: float | None = None):
    ds = bench_dataset(name, fraction)
    return SoapsnpPipeline(window_size=4000, collect_nnz=True).run(ds)


@lru_cache(maxsize=8)
def gsnp_result(name: str, mode: str = "gpu", fraction: float | None = None):
    ds = bench_dataset(name, fraction)
    window = min(256_000, ds.n_sites)
    return GsnpPipeline(window_size=window, mode=mode).run(ds)


@lru_cache(maxsize=8)
def window_words(name: str, fraction: float | None = None):
    """(words, offsets, tables-ready inputs) of the whole dataset as one
    window — shared by the kernel-level experiments."""
    ds = bench_dataset(name, fraction)
    reads = AlignmentBatch.from_read_set(ds.reads)
    params = CallingParams(read_len=reads.read_len)
    pm_flat = flatten_p_matrix(build_p_matrix(reads, ds.reference, params))
    penalty = params.penalty_table()
    window = Window(start=0, end=ds.n_sites, reads=reads)
    obs = extract_observations(window)
    words, offsets = words_from_observations(obs, arrival_order=True)
    return ds, obs, words, offsets, pm_flat, penalty


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def exp_table1(name: str, fraction: float | None = None) -> dict:
    """Table I: SOAPsnp component breakdown, paper vs modeled."""
    res = soapsnp_result(name, fraction)
    fs = extrapolate(res.profile, bench_spec(name, fraction))
    return {
        "paper": TABLE1_PAPER[name],
        "model": {**fs.components, "total": fs.total},
        "wall_scaled": res.profile.total_wall(),
    }


def exp_table2(fraction: float | None = None) -> dict:
    """Table II: dataset characteristics of the scaled replicas."""
    out = {}
    for name in _SPECS:
        ds = bench_dataset(name, fraction)
        summary = dataset_summary(ds)
        reads = AlignmentBatch.from_read_set(ds.reads)
        summary["input_bytes"] = reads.n_reads * soap_line_bytes(reads.read_len)
        out[name] = summary
    return out


@lru_cache(maxsize=4)
def exp_table3(name: str = "ch1-sim", fraction: float | None = None) -> dict:
    """Table III: likelihood_comp hardware counters for the 4 variants.

    Cached: Figure 8 reprices the same counters, so the kernel sweep runs
    once per (dataset, fraction).
    """
    ds, obs, words, offsets, pm_flat, penalty = window_words(name, fraction)
    out = {}
    results = {}
    for variant in ALL_VARIANTS:
        # Table III counters come from one isolated device per variant;
        # pooling would mix link charges into the per-kernel numbers.
        device = Device()  # gsnp-lint: disable=GSNP110
        tables = GsnpTables.load(device, pm_flat, penalty)
        wsorted, _ = gsnp_likelihood_sort(device, words, offsets)
        device.reset_counters()  # isolate the comp kernel
        tl = gsnp_likelihood_comp(device, wsorted, offsets, tables, variant)
        results[variant.name] = tl
        total = device.counters.total()
        out[variant.name] = total.as_dict()
        out[variant.name]["time"] = GpuCostModel().kernel_time(total)
    # All variants must agree bitwise (§IV-G).
    ref = results["optimized"]
    for vname, tl in results.items():
        assert np.array_equal(tl, ref), f"variant {vname} diverged"
    return out


def exp_table4(name: str, fraction: float | None = None) -> dict:
    """Table IV: GSNP breakdown + speedup vs SOAPsnp (both modeled)."""
    gs = gsnp_result(name, "gpu", fraction)
    so = soapsnp_result(name, fraction)
    spec = bench_spec(name, fraction)
    fs_g = extrapolate(gs.profile, spec)
    fs_s = extrapolate(so.profile, spec)
    speedups = {
        c: fs_s.components.get(c, 0.0) / t if t > 0 else float("inf")
        for c, t in fs_g.components.items()
    }
    return {
        "paper": TABLE4_PAPER[name],
        "model": {**fs_g.components, "total": fs_g.total},
        "speedup_model": {**speedups, "total": fs_s.total / fs_g.total},
        "consistent": gs.table.equals(so.table),
    }


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def exp_fig4a(name: str, fraction: float | None = None) -> dict:
    """Fig 4a: Formula-1 estimate vs modeled likelihood/recycle time."""
    res = soapsnp_result(name, fraction)
    spec = bench_spec(name, fraction)
    fs = extrapolate(res.profile, spec)
    n_sites_full = spec.n_sites * spec.scale_factor
    est = CpuCostModel().base_occ_scan_time(int(n_sites_full), BASE_OCC_SIZE)
    return {
        "estimate_scan": est,
        "likelihood": fs.components["likelihood"],
        "recycle": fs.components["recycle"],
        "scan_share_likelihood": est / fs.components["likelihood"],
        "scan_share_recycle": est / fs.components["recycle"],
    }


def exp_fig4b(name: str, fraction: float | None = None) -> dict:
    """Fig 4b: % of sites by number of non-zero base_occ cells."""
    res = soapsnp_result(name, fraction)
    hist = sparsity_histogram(res.nnz)
    return {
        "histogram": hist,
        "mean_nnz": float(res.nnz.mean()),
        "nonzero_pct": 100.0 * float(res.nnz.mean()) / BASE_OCC_SIZE,
    }


def exp_fig5(name: str, fraction: float | None = None) -> dict:
    """Fig 5: likelihood time across the four implementations."""
    spec = bench_spec(name, fraction)
    factor = spec.scale_factor
    so = soapsnp_result(name, fraction)
    soap_t = extrapolate(so.profile, spec).components["likelihood"]
    cpu_t = extrapolate(
        gsnp_result(name, "cpu", fraction).profile, spec
    ).components["likelihood"]
    gpu_t = extrapolate(
        gsnp_result(name, "gpu", fraction).profile, spec
    ).components["likelihood"]
    # GPU-dense strawman: analytic counters on a fresh device.
    ds, obs, words, offsets, pm_flat, penalty = window_words(name, fraction)
    # Strawman counter probe on a deliberately unpooled device.
    device = Device()  # gsnp-lint: disable=GSNP110
    gpu_dense_likelihood_counters(device, obs.n_sites, words.size)
    dense_counters = device.counters.get("likelihood_gpu_dense")
    model = GpuCostModel()
    dense_t = model.kernel_time(dense_counters) * factor
    return {
        "SOAPsnp": soap_t,
        "GPU_dense": dense_t,
        "GSNP_CPU": cpu_t,
        "GSNP": gpu_t,
    }


def exp_fig6(name: str, fraction: float | None = None) -> dict:
    """Fig 6: likelihood_sort vs likelihood_comp, CPU vs GPU."""
    ds, obs, words, offsets, pm_flat, penalty = window_words(name, fraction)
    spec = bench_spec(name, fraction)
    factor = spec.scale_factor
    # Single-kernel microbenchmark: isolated device, no link accounting.
    device = Device()  # gsnp-lint: disable=GSNP110
    tables = GsnpTables.load(device, pm_flat, penalty)
    wsorted, _ = gsnp_likelihood_sort(device, words, offsets)
    sort_counters = device.counters.total()
    device.reset_counters()
    gsnp_likelihood_comp(device, wsorted, offsets, tables, ALL_VARIANTS[3])
    comp_counters = device.counters.total()
    model = GpuCostModel()
    # CPU side: quicksort model + sparse-table comp events.
    lens = np.diff(offsets)
    nl = lens[lens > 1]
    m = words.size
    cpu = CpuCostModel()
    cpu_sort = cpu.time(
        CpuEvents(
            instructions=int((nl * np.log2(nl) * 12).sum()),
            random_accesses=m,
            seq_read_bytes=4 * m,
        )
    )
    cpu_comp = cpu.time(
        CpuEvents(
            instructions=30 * m,
            random_accesses=12 * m,
            seq_read_bytes=8 * m,
        )
    )
    return {
        "gpu_sort": model.kernel_time(sort_counters) * factor,
        "gpu_comp": model.kernel_time(comp_counters) * factor,
        "cpu_sort": cpu_sort * factor,
        "cpu_comp": cpu_comp * factor,
    }


def exp_fig7a(sizes=(4, 8, 16, 32, 64, 128, 256), n_arrays=2048) -> dict:
    """Fig 7a: batch-sort throughput of three implementations."""
    rng = np.random.default_rng(42)
    model = GpuCostModel()
    cpu_model = ParallelCpuSortModel()
    out = {}
    for m in sizes:
        batch = rng.integers(0, 2**17, (n_arrays, m)).astype(np.uint32)
        # Sort microbenchmark measures one device's kernel counters only.
        device = Device()  # gsnp-lint: disable=GSNP110
        batch_sort(device, batch.copy(), name="fig7a_batch")
        t_gpu = model.kernel_time(device.counters.total())
        # Sequential radix: per-array launches underutilize the chip; a
        # small sample extrapolates linearly in array count.
        sample = min(n_arrays, 32)
        # Second isolated device keeps the strawman's counters separate.
        dev2 = Device()  # gsnp-lint: disable=GSNP110
        from ..gpusim.primitives.sort import sequential_radix_sort_batches

        sequential_radix_sort_batches(
            dev2, batch[:sample], np.full(sample, m)
        )
        t_radix = model.kernel_time(dev2.counters.total()) * (
            n_arrays / sample
        )
        out[m] = {
            "cpu_parallel": cpu_model.throughput(n_arrays, m),
            "gpu_batch_bitonic": n_arrays * m / t_gpu if t_gpu else 0.0,
            "gpu_seq_radix": n_arrays * m / t_radix if t_radix else 0.0,
        }
    return out


def exp_fig7b(name: str = "ch1-sim", fraction: float | None = None) -> dict:
    """Fig 7b: multipass vs single-pass vs non-equal bitonic sorting."""
    ds, obs, words, offsets, pm_flat, penalty = window_words(name, fraction)
    spec = bench_spec(name, fraction)
    factor = spec.scale_factor
    model = GpuCostModel()
    out = {}
    for fn, label in (
        (multipass_sort, "bitonic_MP"),
        (singlepass_sort, "bitonic_SP"),
        (nonequal_sort, "bitonic_noneq"),
    ):
        # Per-algorithm counter isolation for the sort comparison figure.
        device = Device()  # gsnp-lint: disable=GSNP110
        sorted_words, stats = fn(words, offsets, device=device)
        t = model.kernel_time(device.counters.total())
        out[label] = {
            "time": t * factor,
            "padded_elements": stats.padded_elements,
            "padding_ratio": stats.padding_ratio,
            "compare_exchanges": stats.compare_exchanges,
        }
    return out


def exp_fig8(name: str, fraction: float | None = None) -> dict:
    """Fig 8: likelihood_comp time for the four optimization variants."""
    counters = exp_table3(name, fraction)
    spec = bench_spec(name, fraction)
    return {
        v: c["time"] * spec.scale_factor for v, c in counters.items()
    }


def exp_fig9(name: str, fraction: float | None = None) -> dict:
    """Fig 9: output size and output speed, three schemes."""
    so = soapsnp_result(name, fraction)
    gs = gsnp_result(name, "gpu", fraction)
    spec = bench_spec(name, fraction)
    factor = spec.scale_factor
    text = format_rows(so.table)
    gz, _ = gzip_compress(text)
    sizes = {
        "SOAPsnp": len(text) * factor,
        "SOAPsnp_gzip": len(gz) * factor,
        "GSNP": gs.output_bytes * factor,
    }
    disk = DiskModel()
    cpu = CpuCostModel()
    speeds = {
        "SOAPsnp": disk.time(
            DiskEvents(write_bytes=len(text), formatted_bytes=len(text))
        )
        * factor,
        "SOAPsnp_gzip": (
            disk.time(DiskEvents(write_bytes=len(gz)))
            + len(text) / GZIP_COMPRESS_BW
        )
        * factor,
        "GSNP_CPU": (
            disk.time(DiskEvents(write_bytes=gs.output_bytes))
            + cpu.time(
                CpuEvents(
                    instructions=int(
                        so.table.n_sites * 40 * (2.0e9 / CPU_COMPRESS_BW)
                    )
                )
            )
        )
        * factor,
        "GSNP": extrapolate(gs.profile, spec).components["output"],
    }
    return {"sizes": sizes, "speeds": speeds}


def exp_fig10(name: str, fraction: float | None = None) -> dict:
    """Fig 10: decompression speed and temporary input size."""
    so = soapsnp_result(name, fraction)
    gs = gsnp_result(name, "gpu", fraction)
    spec = bench_spec(name, fraction)
    factor = spec.scale_factor
    text = format_rows(so.table)
    gz, _ = gzip_compress(text)
    disk = DiskModel()
    # Sequential read of the original text (disk + per-byte text parsing)
    # vs load-compressed + lightweight in-memory decode ("most algorithms
    # only need a sequential scan of the data", §V-B).
    decomp = {
        "SOAPsnp": disk.time(
            DiskEvents(read_bytes=len(text), parsed_bytes=len(text))
        )
        * factor,
        "SOAPsnp_gzip": (
            disk.time(DiskEvents(read_bytes=len(gz)))
            + len(text) / GZIP_DECOMPRESS_BW
        )
        * factor,
        "GSNP": (
            disk.time(DiskEvents(read_bytes=gs.output_bytes))
            + gs.output_bytes / (4 * CPU_COMPRESS_BW)
        )
        * factor,
    }
    # Temporary input file.
    ds = bench_dataset(name, fraction)
    reads = AlignmentBatch.from_read_set(ds.reads)
    raw = reads.n_reads * soap_line_bytes(reads.read_len)
    soap_text_approx = raw
    temp = gs.temp_input_bytes
    # gzip on an approximation of the SOAP text.
    from ..formats.soap import write_soap
    import io, zlib, tempfile, os

    gz_ratio = None
    with tempfile.NamedTemporaryFile(suffix=".soap", delete=False) as f:
        path = f.name
    try:
        nbytes = write_soap(path, reads.slice(0, min(2000, reads.n_reads)))
        with open(path, "rb") as f:
            sample = f.read()
        gz_ratio = len(zlib.compress(sample, 6)) / max(len(sample), 1)
    finally:
        os.unlink(path)
    return {
        "decompression": decomp,
        "input_sizes": {
            "original": soap_text_approx * factor,
            "GSNP_temp": temp * factor,
            "gzip": soap_text_approx * gz_ratio * factor,
        },
    }


def exp_fig11(
    name: str = "ch1-sim",
    fraction: float | None = None,
    windows=(2000, 4000, 8000, 16000, 32000, 49000),
) -> dict:
    """Fig 11: elapsed time and memory vs window size."""
    ds = bench_dataset(name, fraction)
    spec = bench_spec(name, fraction)
    out = {}
    for w in windows:
        w = min(w, ds.n_sites)
        res = GsnpPipeline(window_size=w, mode="gpu").run(ds)
        fs = extrapolate(res.profile, spec)
        out[w] = {
            "time": fs.total,
            "gpu_bytes": res.extras["peak_gpu_bytes"],
            "windows": -(-ds.n_sites // w),
        }
        if w >= ds.n_sites:
            break
    return out


def exp_fig12(fraction: float = 0.05, engines=("soapsnp", "gsnp_cpu", "gsnp")) -> dict:
    """Fig 12: end-to-end time for all 24 chromosomes, three systems.

    Engines dispatch through the registry (:mod:`repro.api`) — any
    registered engine name works, labeled by its ``EngineSpec.label``.
    """
    out = {}
    for spec in whole_genome_specs():
        small = replace(
            spec,
            n_sites=max(int(spec.n_sites * fraction), 2000),
            scale_factor=spec.scale_factor * spec.n_sites
            / max(int(spec.n_sites * fraction), 2000),
        )
        ds = generate_dataset(small)
        row = {}
        for engine in engines:
            pipe = create_pipeline(
                spec=JobSpec(engine=engine, window=ds.n_sites)
            )
            res = pipe.run(ds)
            row[get_engine_spec(engine).label] = extrapolate(
                res.profile, small
            ).total
        out[spec.name] = row
    return out


def exp_parallel_scaling(
    name: str = "ch21-sim",
    fraction: float | None = None,
    workers=(1, 2, 4, 8),
    engine="gsnp",
    window_size: int | None = None,
) -> dict:
    """Sharded-executor scaling: wall-clock and consistency per worker count.

    Runs the same dataset serially and through :func:`repro.exec.execute`
    at each worker count; reports per-count wall seconds, speedup over the
    1-worker parallel run, shard count, and whether the parallel result is
    bitwise identical to serial (calls *and* compressed bytes — it must
    always be).
    """
    from ..exec import execute

    ds = bench_dataset(name, fraction)
    if window_size is None:
        # Enough windows that every worker count gets multiple shards.
        window_size = max(ds.n_sites // 32, 256)
    window = min(effective_window(engine, window_size), ds.n_sites)
    serial = create_pipeline(
        spec=JobSpec(engine=engine, window=window)
    ).run(ds)
    serial_comp = getattr(serial, "compressed_output", b"")
    out = {}
    base_wall = None
    for w in workers:
        t0 = time.perf_counter()
        res = execute(
            ds, spec=JobSpec(engine=engine, window=window, workers=w)
        )
        wall = time.perf_counter() - t0
        if base_wall is None:
            base_wall = wall
        out[w] = {
            "wall": wall,
            "speedup": base_wall / wall if wall > 0 else 0.0,
            "shards": len(res.extras["shards"]),
            "pool": res.extras["exec"]["pool"],
            "consistent": (
                res.table.equals(serial.table)
                and getattr(res, "compressed_output", b"") == serial_comp
            ),
        }
    return out


def exp_multidevice(
    name: str = "ch1-sim",
    fraction: float | None = None,
    window_size: int | None = None,
    devices=(1, 2, 4),
) -> dict:
    """Multi-device pool scaling: modeled end-to-end seconds per arm.

    Sweeps ``devices`` with and without the CPU steal lane on the fused
    GSNP path and reports each arm's *modeled* makespan from the pool
    cost model (slowest lane's compute + the serialized shared-link
    time), plus launch/transfer/steal counts and bitwise consistency
    against the serial run.  Every arm — the 1-device baseline included —
    runs the heterogeneous scheduler over one shared shard plan and one
    shared calibration, so the d-vs-1 ratio isolates parallel compute and
    link contention instead of shard-granularity effects; the plain
    serial fused pipeline is run once purely as the bitwise oracle.  The
    numbers are modeled hardware seconds, not Python wall time: the
    simulator executes lanes eagerly, so wall time measures the
    emulation, not the M2050s being modeled.
    """
    from dataclasses import replace

    from ..align.records import AlignmentBatch
    from ..exec import ExecConfig, merge_shard_results, plan_shards, run_hetero

    ds = bench_dataset(name, fraction)
    if window_size is None:
        # Enough windows that a 4-lane pool still has ~4 shards per lane.
        window_size = max(ds.n_sites // 16, 256)
    window = min(effective_window("gsnp", window_size), ds.n_sites)

    serial_pipe = create_pipeline(
        spec=JobSpec(engine="gsnp", window=window, fusion=True)
    )
    serial = serial_pipe.run(ds)
    if hasattr(serial_pipe, "release_cache"):
        serial_pipe.release_cache()
    serial_comp = serial.compressed_output

    # One calibration and one shard plan shared by every arm (planned for
    # the widest sweep configuration, so each arm schedules identical
    # shards and differs only in lanes and link contention).
    base = JobSpec(engine="gsnp", window=window, fusion=True)
    cal_pipe = create_pipeline(spec=base)
    calibration = cal_pipe.calibrate(
        ds, reads=AlignmentBatch.from_read_set(ds.reads)
    )
    if hasattr(cal_pipe, "release_cache"):
        cal_pipe.release_cache()
    max_lanes = max(devices) + 1
    shards = plan_shards(ds.n_sites, window, None, max_lanes)

    arms = []
    consistent = True
    baseline = None
    for d in devices:
        for steal in (False, True):
            spec = replace(
                base,
                devices=d,
                cpu_steal=steal,
                variant=base.resolved_variant(),
            )
            results, h = run_hetero(
                ds, spec, None, calibration.strip(), list(shards),
                ExecConfig.from_spec(spec),
            )
            res = merge_shard_results(results, calibration)
            ok = (
                res.table.equals(serial.table)
                and res.compressed_output == serial_comp
            )
            consistent = consistent and ok
            makespan = h["modeled"]["makespan_seconds"]
            if d == 1 and not steal:
                baseline = makespan
            link = h["link"]
            arms.append({
                "devices": d,
                "cpu_steal": steal,
                "modeled_seconds": makespan,
                "speedup_vs_1dev": (
                    baseline / makespan
                    if baseline is not None and makespan > 0
                    else 0.0
                ),
                "launches": h["pool_launches"],
                "h2d_count": link["h2d_count"],
                "d2h_count": link["d2h_count"],
                "transfer_bytes": link["h2d_bytes"] + link["d2h_bytes"],
                "link_seconds": h["modeled"]["link_seconds"],
                "steals": h["steals"],
                "initial_split": h["initial_split"],
                "consistent": ok,
            })
    top = max(devices)
    speedup_top = next(
        a["speedup_vs_1dev"]
        for a in arms
        if a["devices"] == top and not a["cpu_steal"]
    )
    return {
        "dataset": name,
        "n_sites": ds.n_sites,
        "window_size": window,
        "fusion": True,
        "arms": arms,
        "speedup_max_devices": speedup_top,
        "max_devices": top,
        "hetero_steals": sum(
            a["steals"] for a in arms
            if a["devices"] > 1 or a["cpu_steal"]
        ),
        "consistent": consistent,
    }


def exp_e2e_throughput(
    name: str = "ch1-sim",
    fraction: float | None = None,
    window_size: int | None = None,
    repeats: int = 2,
) -> dict:
    """End-to-end wall-clock of the throughput engine vs the legacy path.

    Runs the same multi-window GSNP job three ways: *baseline* with
    prefetching, persistent residency, and the simulator's coalescing fast
    paths all disabled (the pre-engine behavior), *optimized* with all
    three enabled, and *fused* adding the ragged-megabatch launch plan on
    top of the optimized arm.  Each arm reports its best of ``repeats``
    runs (the steady-state number — repeat runs are where persistent
    residency pays).  Kernel launch counts per arm come from dedicated
    fresh single runs (no cache, no prefetch) so the device counter
    reflects exactly one pass over the dataset.  Reports sites/sec all
    three ways, the speedups, the launch reduction from fusion, and
    whether calls and compressed bytes are bitwise identical across every
    arm (they must be).
    """
    from ..gpusim.memory import set_fast_paths

    ds = bench_dataset(name, fraction)
    if window_size is None:
        # Enough windows that the double-buffered streaming has overlap.
        window_size = max(ds.n_sites // 16, 256)
    window = min(effective_window("gsnp", window_size), ds.n_sites)

    def run_once(
        prefetch: bool, cache: bool, fast: bool, fusion: bool = False
    ):
        prev = set_fast_paths(fast)
        try:
            pipe = create_pipeline(spec=JobSpec(
                engine="gsnp", window=window, prefetch=prefetch,
                cache=cache, fusion=fusion,
            ))
            best, result = None, None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                result = pipe.run(ds)
                wall = time.perf_counter() - t0
                best = wall if best is None else min(best, wall)
            if hasattr(pipe, "release_cache"):
                pipe.release_cache()
            return result, best
        finally:
            set_fast_paths(prev)

    def count_launches(fusion: bool) -> int:
        # Fresh single run, no residency or prefetch, so the device's
        # cumulative launch counter is exactly one pass over the dataset.
        prev = set_fast_paths(True)
        try:
            pipe = create_pipeline(spec=JobSpec(
                engine="gsnp", window=window, prefetch=False,
                cache=False, fusion=fusion,
            ))
            res = pipe.run(ds)
            return int(res.extras["device"].counters.total().launches)
        finally:
            set_fast_paths(prev)

    base_res, base_wall = run_once(prefetch=False, cache=False, fast=False)
    opt_res, opt_wall = run_once(prefetch=True, cache=True, fast=True)
    fus_res, fus_wall = run_once(
        prefetch=True, cache=True, fast=True, fusion=True
    )
    opt_launches = count_launches(fusion=False)
    fus_launches = count_launches(fusion=True)
    n_sites = ds.n_sites
    return {
        "dataset": name,
        "n_sites": n_sites,
        "n_windows": -(-n_sites // window),
        "window_size": window,
        "repeats": max(1, repeats),
        "baseline": {
            "wall": base_wall,
            "sites_per_sec": n_sites / base_wall if base_wall > 0 else 0.0,
        },
        "optimized": {
            "wall": opt_wall,
            "sites_per_sec": n_sites / opt_wall if opt_wall > 0 else 0.0,
            "launches": opt_launches,
        },
        "fused": {
            "wall": fus_wall,
            "sites_per_sec": n_sites / fus_wall if fus_wall > 0 else 0.0,
            "launches": fus_launches,
        },
        "speedup": base_wall / opt_wall if opt_wall > 0 else 0.0,
        "speedup_fused": base_wall / fus_wall if fus_wall > 0 else 0.0,
        "speedup_fused_vs_optimized": (
            opt_wall / fus_wall if fus_wall > 0 else 0.0
        ),
        "launch_reduction": (
            opt_launches / fus_launches if fus_launches > 0 else 0.0
        ),
        "consistent": (
            opt_res.table.equals(base_res.table)
            and opt_res.compressed_output == base_res.compressed_output
            and fus_res.table.equals(base_res.table)
            and fus_res.compressed_output == base_res.compressed_output
        ),
    }


def cohort_batches(ds: SimulatedDataset, n_samples: int):
    """Alignment batches for an ``n_samples`` cohort over one dataset.

    Sample 0 is the dataset's own read set; further samples are fresh
    simulated sequencing runs of the *same* diploid individual under the
    same depth/coverage model (distinct deterministic seeds) — the
    shared-reference cohort the batched execution mode targets.
    """
    from ..seqsim.reads import simulate_reads

    batches = [AlignmentBatch.from_read_set(ds.reads)]
    spec = ds.spec
    for i in range(1, n_samples):
        rs = simulate_reads(
            ds.diploid,
            depth=spec.depth,
            coverage=spec.coverage,
            read_len=spec.read_len,
            multihit_fraction=spec.multihit_fraction,
            seed=spec.seed * 7 + 3 + 1000 * i,
        )
        batches.append(AlignmentBatch.from_read_set(rs))
    return batches


def exp_cohort(
    name: str = "ch1-sim",
    fraction: float | None = None,
    samples=(1, 2, 4),
    window_size: int | None = None,
) -> dict:
    """Cohort batching: modeled per-sample cost of fused S-sample runs.

    Sweeps the cohort size S with the fused sample-major path and reports
    each arm's modeled end-to-end seconds (one pooled ``cal_p_matrix``
    pass plus the run profile), the per-sample share, the per-sample
    throughput speedup over the S=1 arm, and the fused launch counts per
    stage.  The batching wins come from amortization — one input pass,
    one calibration, one resident table set, one launch chain per
    megabatch — so per-sample cost must *fall* as S grows while launches
    per stage stay bounded (``LAUNCH_STAGE_RATIO_BOUND``) instead of
    scaling with S.

    Every arm is checked bitwise: each cohort member's table and
    compressed stream must equal a solo *non-fused* serial run of that
    sample sharing the pooled calibration (the strongest cross-path
    oracle available — different layout, different launch chain, same
    bytes).
    """
    from ..core.cohort import pooled_batch

    ds = bench_dataset(name, fraction)
    if window_size is None:
        # Enough windows that megabatching has something to fuse.
        window_size = max(ds.n_sites // 16, 256)
    window = min(effective_window("gsnp", window_size), ds.n_sites)
    sweep = sorted(set(samples) | {1})
    all_batches = cohort_batches(ds, max(sweep))

    arms = []
    consistent = True
    base_per_sample = None
    base_stages: dict | None = None
    for s in sweep:
        batches = all_batches[:s]
        pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=window, fusion=True)
        )
        cal = pipe.calibrate(ds, reads=pooled_batch(batches))
        res = pipe.run_cohort(ds, batches, calibration=cal)
        if hasattr(pipe, "release_cache"):
            pipe.release_cache()
        total = cal.record.modeled_time() + res.profile.total_modeled()
        per_sample = total / s

        solo_pipe = create_pipeline(
            spec=JobSpec(engine="gsnp", window=window, fusion=False)
        )
        ok = True
        for si, batch in enumerate(batches):
            solo = solo_pipe.run(ds, calibration=cal, reads=batch)
            sres = res.sample_result(si)
            ok = ok and (
                sres.table.equals(solo.table)
                and sres.compressed_output == solo.compressed_output
            )
        if hasattr(solo_pipe, "release_cache"):
            solo_pipe.release_cache()
        consistent = consistent and ok

        fusion = res.extras["fusion"]
        stages = {
            k: int(v["launches"]) for k, v in fusion["stages"].items()
        }
        if s == 1:
            base_per_sample = per_sample
            base_stages = stages
        ratio = (
            max(
                stages[k] / base_stages[k]
                for k in stages
                if base_stages.get(k)
            )
            if base_stages
            else 1.0
        )
        arms.append({
            "samples": s,
            "modeled_seconds": total,
            "per_sample_seconds": per_sample,
            "per_sample_sites_per_sec": (
                ds.n_sites / per_sample if per_sample > 0 else 0.0
            ),
            "speedup_per_sample": (
                base_per_sample / per_sample
                if base_per_sample and per_sample > 0
                else 1.0
            ),
            "launches": fusion["launches"],
            "megabatches": fusion["megabatches"],
            "stages": stages,
            "launch_stage_ratio_max": ratio,
            "consistent": ok,
        })
    top = max(sweep)
    top_arm = next(a for a in arms if a["samples"] == top)
    return {
        "dataset": name,
        "n_sites": ds.n_sites,
        "window_size": window,
        "fusion": True,
        "samples": sweep,
        "arms": arms,
        "max_samples": top,
        "speedup_max_samples": top_arm["speedup_per_sample"],
        "launch_stage_ratio_max": top_arm["launch_stage_ratio_max"],
        "launches_stage_bounded": (
            top_arm["launch_stage_ratio_max"] <= LAUNCH_STAGE_RATIO_BOUND
        ),
        "consistent": consistent,
    }
