"""Benchmark report rendering.

Benchmarks print paper-vs-reproduction tables through :func:`emit`.  The
suite runs with ``-s`` (see pyproject) so the tables land on stdout and in
``pytest benchmarks/ | tee bench_output.txt``; every line is additionally
appended to ``$REPRO_REPORT_FILE`` when that variable is set.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, Sequence


def emit(text: str) -> None:
    """Write a report line to stdout (and the optional report file)."""
    print(text, flush=True)
    path = os.environ.get("REPRO_REPORT_FILE")
    if path:
        with open(path, "a") as f:
            f.write(text + "\n")


def emit_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str | None = None,
) -> None:
    """Render an aligned text table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    emit("")
    emit(f"=== {title} ===")
    emit(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    emit(sep.join("-" * w for w in widths))
    for row in rows:
        emit(sep.join(c.rjust(widths[i]) for i, c in enumerate(row)))
    if note:
        emit(f"note: {note}")


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def ratio_str(ours: float, paper: float) -> str:
    """Render ours/paper agreement as a factor string."""
    if paper == 0 or ours == 0:
        return "n/a"
    r = ours / paper
    return f"{r:.2f}x"
