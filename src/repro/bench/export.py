"""Export experiment data as CSV for external plotting.

``gsnp-bench`` (or :func:`export_all`) re-runs the evaluation drivers and
writes one CSV per table/figure into a results directory — the series a
plotting script needs to redraw the paper's figures from this
reproduction's numbers.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .harness import (
    exp_fig4a,
    exp_fig4b,
    exp_fig5,
    exp_fig6,
    exp_fig7a,
    exp_fig7b,
    exp_fig8,
    exp_fig9,
    exp_fig10,
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
)

#: Dataset names the experiments run over.
DATASETS = ("ch1-sim", "ch21-sim")


def _write(path: Path, header: list[str], rows: list[list]) -> None:
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(header)
        w.writerows(rows)


def export_all(
    out_dir: str | Path,
    fraction: float | None = None,
    include: tuple[str, ...] = (
        "table1", "table2", "table3", "table4",
        "fig4a", "fig4b", "fig5", "fig6", "fig7a", "fig7b", "fig8",
        "fig9", "fig10",
    ),
) -> list[Path]:
    """Run the selected experiments and write their CSVs.

    Returns the list of files written.  ``fraction`` further shrinks the
    bench datasets (None = harness defaults).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def emit(name: str, header, rows):
        path = out / f"{name}.csv"
        _write(path, header, rows)
        written.append(path)

    if "table1" in include or "table4" in include:
        for name in DATASETS:
            if "table1" in include:
                d = exp_table1(name, fraction)
                emit(
                    f"table1_{name}",
                    ["component", "paper_s", "model_s"],
                    [
                        [c, d["paper"].get(c), round(v, 2)]
                        for c, v in d["model"].items()
                    ],
                )
            if "table4" in include:
                d = exp_table4(name, fraction)
                emit(
                    f"table4_{name}",
                    ["component", "paper_s", "model_s", "speedup_model"],
                    [
                        [c, d["paper"].get(c), round(v, 2),
                         round(d["speedup_model"].get(c, 0), 1)]
                        for c, v in d["model"].items()
                    ],
                )
    if "table2" in include:
        d = exp_table2(fraction)
        emit(
            "table2",
            ["dataset", "sites", "depth", "coverage", "reads",
             "input_bytes"],
            [
                [name, s["sites"], round(s["depth"], 2),
                 round(s["coverage"], 3), s["reads"], s["input_bytes"]]
                for name, s in d.items()
            ],
        )
    if "table3" in include:
        d = exp_table3("ch1-sim", fraction)
        emit(
            "table3_ch1-sim",
            ["variant", "inst_pw", "g_load", "g_store", "s_load_pw",
             "s_store_pw", "modeled_s"],
            [
                [v, c["inst_pw"], c["g_load"], c["g_store"],
                 c["s_load_pw"], c["s_store_pw"], c["time"]]
                for v, c in d.items()
            ],
        )
    for name in DATASETS:
        if "fig4a" in include:
            d = exp_fig4a(name, fraction)
            emit(
                f"fig4a_{name}", ["quantity", "seconds"],
                [[k, round(v, 2)] for k, v in d.items()],
            )
        if "fig4b" in include:
            d = exp_fig4b(name, fraction)
            emit(
                f"fig4b_{name}", ["bucket", "percent_of_sites"],
                [[k, round(v, 3)] for k, v in d["histogram"].items()],
            )
        if "fig5" in include:
            d = exp_fig5(name, fraction)
            emit(
                f"fig5_{name}", ["implementation", "seconds"],
                [[k, round(v, 2)] for k, v in d.items()],
            )
        if "fig6" in include:
            d = exp_fig6(name, fraction)
            emit(
                f"fig6_{name}", ["step", "seconds"],
                [[k, round(v, 3)] for k, v in d.items()],
            )
        if "fig8" in include:
            d = exp_fig8(name, fraction)
            emit(
                f"fig8_{name}", ["variant", "seconds"],
                [[k, round(v, 2)] for k, v in d.items()],
            )
        if "fig9" in include:
            d = exp_fig9(name, fraction)
            emit(
                f"fig9_{name}",
                ["scheme", "size_bytes", "speed_seconds"],
                [
                    [k, round(d["sizes"].get(k, 0)),
                     round(d["speeds"].get(k, 0), 2)]
                    for k in set(d["sizes"]) | set(d["speeds"])
                ],
            )
        if "fig10" in include:
            d = exp_fig10(name, fraction)
            emit(
                f"fig10a_{name}", ["scheme", "read_seconds"],
                [[k, round(v, 2)] for k, v in d["decompression"].items()],
            )
            emit(
                f"fig10b_{name}", ["scheme", "bytes"],
                [[k, round(v)] for k, v in d["input_sizes"].items()],
            )
    if "fig7a" in include:
        d = exp_fig7a()
        emit(
            "fig7a",
            ["array_size", "cpu_parallel", "gpu_batch_bitonic",
             "gpu_seq_radix"],
            [
                [m, v["cpu_parallel"], v["gpu_batch_bitonic"],
                 v["gpu_seq_radix"]]
                for m, v in d.items()
            ],
        )
    if "fig7b" in include:
        d = exp_fig7b("ch1-sim", fraction)
        emit(
            "fig7b_ch1-sim",
            ["strategy", "seconds", "padded_elements", "padding_ratio",
             "compare_exchanges"],
            [
                [k, round(v["time"], 3), v["padded_elements"],
                 round(v["padding_ratio"], 3), v["compare_exchanges"]]
                for k, v in d.items()
            ],
        )
    return written
