"""Calling-accuracy evaluation against planted truth.

The paper evaluates performance, taking accuracy as given ("the Bayesian
model ... has shown high accuracy in practice" [1]); a reproduction with
synthetic truth can *measure* it.  This module sweeps the consensus-quality
threshold and reports precision/recall/F1 per operating point — the
standard way to characterize a caller — plus genotype-level concordance
(the called genotype must match the planted one, not merely flag the
site).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import GENOTYPES
from ..formats.cns import ResultTable
from ..seqsim.datasets import SimulatedDataset
from ..soapsnp.posterior import is_snp_call


@dataclass(frozen=True)
class OperatingPoint:
    """Accuracy at one quality threshold."""

    min_quality: int
    true_positives: int
    false_positives: int
    false_negatives: int
    genotype_exact: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def genotype_concordance(self) -> float:
        """Fraction of true positives whose genotype matches the truth."""
        return (
            self.genotype_exact / self.true_positives
            if self.true_positives
            else 1.0
        )


def quality_sweep(
    table: ResultTable,
    dataset: SimulatedDataset,
    thresholds=(0, 5, 13, 20, 30, 50),
    min_depth: int = 1,
) -> list[OperatingPoint]:
    """Score calls at each quality threshold.

    Planted SNPs at sites with depth below ``min_depth`` are excluded from
    the false-negative count (undetectable by construction).
    """
    snp_mask = is_snp_call(table)
    pos0 = table.pos - 1
    depth_at = np.zeros(dataset.n_sites, dtype=np.int64)
    depth_at[pos0] = table.depth
    truth_positions = dataset.diploid.snp_positions
    visible = truth_positions[depth_at[truth_positions] >= min_depth]
    truth_set = {int(p) for p in visible}
    truth_geno = {
        int(p): GENOTYPES.index(
            (int(g[0]), int(g[1]))
        )
        for p, g in zip(
            dataset.diploid.snp_positions, dataset.diploid.snp_genotypes
        )
    }
    out = []
    for q in thresholds:
        called = snp_mask & (table.quality >= q)
        called_pos = pos0[called]
        called_geno = table.genotype[called]
        tp = fp = exact = 0
        for p, g in zip(called_pos.tolist(), called_geno.tolist()):
            if p in truth_set:
                tp += 1
                if truth_geno.get(p) == g:
                    exact += 1
            else:
                fp += 1
        out.append(
            OperatingPoint(
                min_quality=q,
                true_positives=tp,
                false_positives=fp,
                false_negatives=len(truth_set) - tp,
                genotype_exact=exact,
            )
        )
    return out


def best_f1(points: list[OperatingPoint]) -> OperatingPoint:
    """The operating point maximizing F1."""
    if not points:
        raise ValueError("no operating points")
    return max(points, key=lambda p: p.f1)
