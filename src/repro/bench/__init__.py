"""Benchmark harness: events, full-scale extrapolation, experiment drivers."""

from .events import COMPONENTS, PhaseRecord, RunProfile
from .report import emit, emit_table, ratio_str
from .scale import (
    TABLE1_PAPER,
    TABLE4_PAPER,
    FullScaleBreakdown,
    extrapolate,
)

__all__ = [
    "COMPONENTS",
    "FullScaleBreakdown",
    "PhaseRecord",
    "RunProfile",
    "TABLE1_PAPER",
    "TABLE4_PAPER",
    "emit",
    "emit_table",
    "extrapolate",
    "ratio_str",
]
