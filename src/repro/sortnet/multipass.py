"""Multipass sorting of a large number of variable-size small arrays.

Section IV-C: ``base_word`` arrays differ in size across sites, so a single
batch sort padded to the *largest* size wastes most of its work (the paper
measures ~4x more elements sorted, ~5x slower).  The multipass scheme
buckets sites by size class — [0,1], (1,8], (8,16], (16,32], (32,64],
(64, ...] — and runs one equi-sized batch sort per class, keeping warp
workloads balanced.

:func:`multipass_sort` is the production entry point used by the GSNP
pipeline; :func:`singlepass_sort` and :func:`nonequal_sort` are the two
strawmen of Figure 7(b).  All three return identical results; they differ
only in padding waste and launch structure, which is what the benchmark
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..constants import BASE_WORD_SENTINEL, MULTIPASS_BOUNDS
from ..gpusim.device import Device
from .batch import batch_sort, pad_rows
from .bitonic import bitonic_sort_batch, n_steps, next_pow2


@dataclass
class SortStats:
    """Work accounting for one sorting strategy (drives Figure 7b)."""

    strategy: str = ""
    passes: int = 0
    real_elements: int = 0
    padded_elements: int = 0
    #: Compare-exchange slots executed, including those wasted on padding
    #: and on lanes idled by workload imbalance.
    compare_exchanges: int = 0
    per_pass: list[tuple[int, int]] = field(default_factory=list)

    @property
    def padding_ratio(self) -> float:
        """padded / real element ratio (1.0 = no waste)."""
        if self.real_elements == 0:
            return 1.0
        return self.padded_elements / self.real_elements


def size_class_of(lengths: np.ndarray, bounds=MULTIPASS_BOUNDS) -> np.ndarray:
    """Map each array length to its size-class index (0..len(bounds))."""
    return np.searchsorted(np.asarray(bounds), lengths, side="left")


def _sort_bucket(
    words: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    sel: np.ndarray,
    width: int,
    out: np.ndarray,
    device: Optional[Device],
    name: str,
) -> tuple[int, int]:
    """Sort the selected rows at the given batch width; scatter into out.

    Returns (rows, padded_elements) for accounting.
    """
    rows = int(sel.sum())
    if rows == 0:
        return 0, 0
    sub_off = offsets[:-1][sel]
    sub_len = lengths[sel]
    batch = pad_rows(words, sub_len, width, BASE_WORD_SENTINEL, sub_off)
    col = np.arange(width)
    valid = col[None, :] < sub_len[:, None]
    idx = sub_off[:, None] + col[None, :]
    if width > 1:
        if device is not None:
            # Staging: gather the scattered per-site segments into the
            # padded batch and scatter the sorted rows back.  Segments are
            # short, so each row touches its own cache lines — this
            # semi-coalesced traffic is a real cost of the batch layout.
            from ..gpusim.memory import count_transactions

            tx = count_transactions(
                idx[valid].ravel(), words.itemsize,
                device.spec.warp_size, device.spec.segment_bytes,
            )
            c = device.counters.get(name)
            c.g_load += tx
            c.g_store += tx
            c.g_load_bytes += int(valid.sum()) * words.itemsize
            c.g_store_bytes += int(valid.sum()) * words.itemsize
            batch = batch_sort(device, batch, name=name)
        else:
            batch = bitonic_sort_batch(batch)
    out[idx[valid]] = batch[valid]
    return rows, rows * width


def multipass_sort(
    words: np.ndarray,
    offsets: np.ndarray,
    device: Optional[Device] = None,
    bounds=MULTIPASS_BOUNDS,
) -> tuple[np.ndarray, SortStats]:
    """Sort every per-site array with one pass per size class.

    ``words`` is the flat (already key-transformed) uint32 storage;
    ``offsets`` has ``n_sites + 1`` entries.  When ``device`` is given the
    batch sorts run as simulated GPU kernels; otherwise a pure-NumPy
    network is used (the GSNP_CPU configuration... which in the paper uses
    quicksort — see :mod:`repro.sortnet.cpu_sort` for that baseline).

    Returns ``(sorted_words, stats)``.
    """
    lengths = np.diff(offsets)
    out = words.copy()
    stats = SortStats(strategy="multipass", real_elements=int(lengths.sum()))
    classes = size_class_of(lengths, bounds)
    uppers = list(bounds) + [int(lengths.max(initial=1))]
    for ci in range(len(bounds) + 1):
        sel = classes == ci
        width = next_pow2(int(uppers[ci]))
        if ci == 0 and bounds and bounds[0] == 1:
            # Arrays of size 0 or 1 are already sorted; no pass needed.
            continue
        rows, padded = _sort_bucket(
            words, offsets, lengths, sel, width, out, device,
            name=f"likelihood_sort_c{ci}",
        )
        if rows:
            stats.passes += 1
            stats.padded_elements += padded
            stats.compare_exchanges += rows * n_steps(width) * (width // 2)
            stats.per_pass.append((width, rows))
    stats.padded_elements += int((lengths <= 1).sum())  # untouched singletons
    return out, stats


def singlepass_sort(
    words: np.ndarray,
    offsets: np.ndarray,
    device: Optional[Device] = None,
) -> tuple[np.ndarray, SortStats]:
    """Figure 7(b) strawman: one batch padded to the largest array size."""
    lengths = np.diff(offsets)
    out = words.copy()
    stats = SortStats(strategy="singlepass", real_elements=int(lengths.sum()))
    if lengths.size == 0:
        return out, stats
    width = next_pow2(int(lengths.max(initial=1)))
    sel = np.ones(lengths.size, dtype=bool)
    rows, padded = _sort_bucket(
        words, offsets, lengths, sel, width, out, device,
        name="likelihood_sort_sp",
    )
    stats.passes = 1
    stats.padded_elements = padded
    stats.compare_exchanges = rows * n_steps(width) * (width // 2)
    stats.per_pass.append((width, rows))
    return out, stats


def nonequal_sort(
    words: np.ndarray,
    offsets: np.ndarray,
    device: Optional[Device] = None,
) -> tuple[np.ndarray, SortStats]:
    """Figure 7(b) strawman: sort different-size arrays in one launch.

    Each array runs a network sized to its own (power-of-two-rounded)
    length, but because warps execute in lockstep every warp pays for the
    *longest* array it carries — the workload imbalance the multipass
    scheme removes.  Functionally this equals per-size batches; the stats
    charge each array the step count of the launch-wide maximum.
    """
    lengths = np.diff(offsets)
    out = words.copy()
    stats = SortStats(strategy="nonequal", real_elements=int(lengths.sum()))
    if lengths.size == 0:
        return out, stats
    max_width = next_pow2(int(lengths.max(initial=1)))
    widths = np.array([next_pow2(int(l)) for l in lengths])
    for width in np.unique(widths):
        if width <= 1:
            continue
        sel = widths == width
        _sort_bucket(
            words, offsets, lengths, sel, int(width), out, device,
            name="likelihood_sort_ne",
        )
    stats.passes = 1
    stats.padded_elements = int(widths.sum())
    # Lockstep imbalance: every array pays the full-depth network at its
    # own width's pair count.
    stats.compare_exchanges = int(
        sum(n_steps(max_width) * (w // 2) for w in widths)
    )
    stats.per_pass.append((max_width, int(lengths.size)))
    return out, stats
