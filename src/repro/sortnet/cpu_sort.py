"""CPU-side small-array sorting baselines.

Two baselines from the evaluation:

* :func:`quicksort_per_site` — what GSNP_CPU uses for ``likelihood_sort``
  (Figure 6): an introsort/quicksort per site, here NumPy's ``np.sort`` on
  each slice (O(n log n), cache-friendly, no padding waste).
* :class:`ParallelCpuSortModel` — the OpenMP 16-thread quicksort of
  Figure 7(a), modeled analytically: per-array calls cost a fixed overhead
  plus ``c * n log2 n`` comparisons, divided over the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def quicksort_per_site(words: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sort each per-site slice of the flat array with the system sort."""
    out = words.copy()
    lengths = np.diff(offsets)
    for i in np.nonzero(lengths > 1)[0]:
        s, e = offsets[i], offsets[i + 1]
        out[s:e] = np.sort(out[s:e], kind="quicksort")
    return out


def quicksort_batch(batch: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Sort each valid row prefix of a padded batch (CPU reference)."""
    out = batch.copy()
    for i in range(batch.shape[0]):
        m = int(lengths[i])
        if m > 1:
            out[i, :m] = np.sort(out[i, :m], kind="quicksort")
    return out


@dataclass(frozen=True)
class ParallelCpuSortModel:
    """Analytical throughput model for the 16-thread CPU quicksort.

    ``time = (n_arrays * (call_overhead + compare_cost * m * log2(m)))
    / threads`` — one array per thread, as in the paper's OpenMP baseline.
    """

    threads: int = 16
    call_overhead: float = 1e-8
    compare_cost: float = 4e-9

    def time(self, n_arrays: int, m: int) -> float:
        """Modeled seconds to sort ``n_arrays`` arrays of size ``m``."""
        if m <= 1:
            work = self.call_overhead
        else:
            work = self.call_overhead + self.compare_cost * m * np.log2(m)
        return n_arrays * work / self.threads

    def throughput(self, n_arrays: int, m: int) -> float:
        """Elements sorted per second (Formula 3 of the paper)."""
        t = self.time(n_arrays, m)
        return (n_arrays * m) / t if t > 0 else 0.0
