"""Batch-sort primitive: many equi-sized small arrays in one launch.

This is the primitive of Section IV-C: each CUDA thread block sorts one (or
several) small arrays with a bitonic network running in shared memory.  The
simulated kernel performs the real sort (via the shared network schedule)
and accounts

* one coalesced global load + one coalesced global store for the batch,
* two shared loads + two shared stores per compare-exchange step when the
  arrays fit in shared memory,
* the same traffic against *global* memory otherwise (the slow path the
  multipass heuristics of [9] avoid).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..gpusim.device import Device
from ..gpusim.memory import DeviceArray
from .bitonic import bitonic_steps, compare_exchange_indices, next_pow2


def _batch_bitonic_kernel(
    ctx, batch: DeviceArray, n_arrays: int, m: int, use_shared: bool
):
    """One thread per element; each block owns whole arrays.

    The functional sort runs on the backing store with the same network
    schedule a per-thread implementation would execute, so results and
    accounting agree with real lockstep execution.
    """
    n_threads = ctx.n_threads
    elem_idx = ctx.tid  # thread t owns element t of the flattened batch
    active = elem_idx < n_arrays * m
    # Stage the batch: coalesced read of every element.
    if use_shared:
        _ = ctx.gload(batch, np.minimum(elem_idx, batch.size - 1), active=active)
        ctx.note_shared(stores=1, active=active)
    view = batch.data.reshape(n_arrays, m)
    for k, j in bitonic_steps(m):
        i, partner, ascending = compare_exchange_indices(m, k, j)
        # Functional compare-exchange over the whole batch.
        a = view[:, i]
        b = view[:, partner]
        swap = np.where(ascending[None, :], a > b, a < b)
        view[:, i] = np.where(swap, b, a)
        view[:, partner] = np.where(swap, a, b)
        # Accounting: half the threads own a pair; in lockstep the whole
        # warp still issues the instructions (divergence!).
        pair_owner = active & (((elem_idx % m) ^ j) > (elem_idx % m))
        if use_shared:
            ctx.note_shared(loads=2, stores=2, active=pair_owner)
            # Compare-exchange + index math + __syncthreads per step; the
            # whole warp pays even for non-owner lanes (divergence).
            ctx.instr(12, active=active)
        else:
            row = elem_idx // m
            col = elem_idx % m
            mine = row * m + col
            partner_idx = row * m + (col ^ j)
            _ = ctx.gload(batch, np.minimum(mine, batch.size - 1), active=pair_owner)
            _ = ctx.gload(
                batch, np.minimum(partner_idx, batch.size - 1), active=pair_owner
            )
            ctx.instr(4, active=pair_owner)
            # Stores of both elements of the pair.
            lo = view[:, :].reshape(-1)
            ctx.gstore(
                batch,
                np.minimum(mine, batch.size - 1),
                lo[np.minimum(mine, batch.size - 1)],
                active=pair_owner,
            )
            ctx.gstore(
                batch,
                np.minimum(partner_idx, batch.size - 1),
                lo[np.minimum(partner_idx, batch.size - 1)],
                active=pair_owner,
            )
    if use_shared:
        ctx.note_shared(loads=1, active=active)
        ctx.gstore(
            batch,
            np.minimum(elem_idx, batch.size - 1),
            batch.data.reshape(-1)[np.minimum(elem_idx, batch.size - 1)],
            active=active,
        )


def batch_sort(
    device: Device,
    batch: np.ndarray,
    name: str = "batch_sort",
    elem_bytes: int = 4,
) -> np.ndarray:
    """Sort each row of a host batch on the simulated GPU.

    ``batch`` is ``(n_arrays, m)`` with ``m`` a power of two (pre-padded
    with sentinels).  Returns the sorted batch (host array).  Shared memory
    is used when one array fits in a block's 48 KB, matching the heuristic
    of Section IV-C.
    """
    batch = np.ascontiguousarray(batch)
    if batch.ndim != 2:
        raise KernelError("batch must be 2-D")
    n_arrays, m = batch.shape
    if m & (m - 1):
        raise KernelError(f"batch width must be a power of 2, got {m}")
    if n_arrays == 0 or m <= 1:
        return batch.copy()
    use_shared = m * elem_bytes <= device.spec.shared_mem_per_block
    dev_batch = device.to_device(batch.reshape(-1), name=f"{name}.data")
    device.launch(
        _batch_bitonic_kernel,
        n_arrays * m,
        dev_batch,
        n_arrays,
        m,
        use_shared,
        name=name,
    )
    out = device.from_device(dev_batch).reshape(n_arrays, m)
    device.free(dev_batch)
    return out


def pad_rows(
    rows: np.ndarray,
    lengths: np.ndarray,
    width: int,
    sentinel,
    offsets: np.ndarray,
) -> np.ndarray:
    """Gather variable-length rows from a flat array into a padded batch.

    ``rows`` is the flat storage; row ``i`` occupies
    ``rows[offsets[i] : offsets[i] + lengths[i]]``.  Positions beyond each
    row's length are filled with ``sentinel`` (which must sort after all
    real values).
    """
    n = lengths.size
    if n == 0:
        return np.empty((0, width), dtype=rows.dtype)
    if lengths.max(initial=0) > width:
        raise KernelError("row longer than batch width")
    col = np.arange(width)
    idx = offsets[:, None] + col[None, :]
    valid = col[None, :] < lengths[:, None]
    out = np.full((n, width), sentinel, dtype=rows.dtype)
    out[valid] = rows[idx[valid]]
    return out
