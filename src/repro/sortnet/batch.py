"""Batch-sort primitive: many equi-sized small arrays in one launch.

This is the primitive of Section IV-C: each CUDA thread block sorts one (or
several) small arrays with a bitonic network running in shared memory.  The
simulated kernel performs the real sort (via the shared network schedule)
and accounts

* one coalesced global load + one coalesced global store for the batch,
* two shared loads + two shared stores per compare-exchange step when the
  arrays fit in shared memory,
* the same traffic against *global* memory otherwise (the slow path the
  multipass heuristics of [9] avoid).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..gpusim.device import Device
from ..gpusim.memory import DeviceArray
from .bitonic import bitonic_steps, compare_exchange_indices, next_pow2


def _batch_bitonic_kernel(
    ctx, batch: DeviceArray, n_arrays: int, m: int, use_shared: bool
):
    """One thread per element; each block owns whole arrays.

    In the shared-memory configuration the sort runs in shared memory
    (which the simulator does not materialize — the backing store stands
    in for it), so global memory is only touched by the staging copies.
    In the global-memory configuration every compare-exchange is routed
    through ``ctx`` for real, with a barrier between network steps, so
    both the results and the accounting come from lockstep execution.
    """
    elem_idx = ctx.tid  # thread t owns element t of the flattened batch
    active = elem_idx < n_arrays * m
    col = elem_idx % m
    if use_shared:
        # Stage the batch into shared memory: coalesced read per element.
        _ = ctx.gload(batch, elem_idx, active=active)
        ctx.note_shared(stores=1, active=active)
        # Shared-memory stand-in: the network runs on the backing store in
        # place of the (unmaterialized) shared buffer.
        view = batch.data.reshape(n_arrays, m)  # gsnp-lint: disable=GSNP101
        for k, j in bitonic_steps(m):
            i, partner, ascending = compare_exchange_indices(m, k, j)
            a = view[:, i]
            b = view[:, partner]
            swap = np.where(ascending[None, :], a > b, a < b)
            view[:, i] = np.where(swap, b, a)
            view[:, partner] = np.where(swap, a, b)
            # Half the threads own a pair; in lockstep the whole warp still
            # issues the instructions (divergence!).
            pair_owner = active & ((col ^ j) > col)
            ctx.note_shared(loads=2, stores=2, active=pair_owner)
            # Compare-exchange + index math + __syncthreads per step; the
            # whole warp pays even for non-owner lanes (divergence).
            ctx.instr(12, active=active)
            ctx.syncthreads()
        ctx.note_shared(loads=1, active=active)
        sorted_flat = batch.data.reshape(-1)  # gsnp-lint: disable=GSNP101 (shared-tile read-back; traffic charged via note_shared above)
        ctx.gstore(
            batch,
            elem_idx,
            sorted_flat[np.minimum(elem_idx, batch.size - 1)],
            active=active,
        )
    else:
        # Global-memory path: the pair owner loads both elements, resolves
        # the compare-exchange in registers, and stores both back.
        for k, j in bitonic_steps(m):
            pair_owner = active & ((col ^ j) > col)
            partner_idx = elem_idx - col + (col ^ j)
            ascending = (col & k) == 0
            a = ctx.gload(batch, elem_idx, active=pair_owner)
            b = ctx.gload(batch, partner_idx, active=pair_owner)
            swap = pair_owner & np.where(ascending, a > b, a < b)
            ctx.instr(4, active=pair_owner)
            ctx.gstore(batch, elem_idx, np.where(swap, b, a), active=pair_owner)
            ctx.gstore(
                batch, partner_idx, np.where(swap, a, b), active=pair_owner
            )
            # The next step reads what other lanes just wrote.
            ctx.syncthreads()


def batch_sort(
    device: Device,
    batch: np.ndarray,
    name: str = "batch_sort",
    elem_bytes: int = 4,
) -> np.ndarray:
    """Sort each row of a host batch on the simulated GPU.

    ``batch`` is ``(n_arrays, m)`` with ``m`` a power of two (pre-padded
    with sentinels).  Returns the sorted batch (host array).  Shared memory
    is used when one array fits in a block's 48 KB, matching the heuristic
    of Section IV-C.
    """
    batch = np.ascontiguousarray(batch)
    if batch.ndim != 2:
        raise KernelError("batch must be 2-D")
    n_arrays, m = batch.shape
    if m & (m - 1):
        raise KernelError(f"batch width must be a power of 2, got {m}")
    if n_arrays == 0 or m <= 1:
        return batch.copy()
    use_shared = m * elem_bytes <= device.spec.shared_mem_per_block
    dev_batch = device.to_device(batch.reshape(-1), name=f"{name}.data")
    device.launch(
        _batch_bitonic_kernel,
        n_arrays * m,
        dev_batch,
        n_arrays,
        m,
        use_shared,
        name=name,
    )
    out = device.from_device(dev_batch).reshape(n_arrays, m)
    device.free(dev_batch)
    return out


def pad_rows(
    rows: np.ndarray,
    lengths: np.ndarray,
    width: int,
    sentinel,
    offsets: np.ndarray,
) -> np.ndarray:
    """Gather variable-length rows from a flat array into a padded batch.

    ``rows`` is the flat storage; row ``i`` occupies
    ``rows[offsets[i] : offsets[i] + lengths[i]]``.  Positions beyond each
    row's length are filled with ``sentinel`` (which must sort after all
    real values).
    """
    n = lengths.size
    if n == 0:
        return np.empty((0, width), dtype=rows.dtype)
    if lengths.max(initial=0) > width:
        raise KernelError("row longer than batch width")
    col = np.arange(width)
    idx = offsets[:, None] + col[None, :]
    valid = col[None, :] < lengths[:, None]
    out = np.full((n, width), sentinel, dtype=rows.dtype)
    out[valid] = rows[idx[valid]]
    return out
