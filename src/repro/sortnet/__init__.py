"""Multipass batch sorting network for billions of tiny arrays (§IV-C)."""

from .batch import batch_sort, pad_rows
from .bitonic import (
    bitonic_sort_batch,
    bitonic_steps,
    compare_exchange_count,
    n_steps,
    next_pow2,
)
from .cpu_sort import ParallelCpuSortModel, quicksort_batch, quicksort_per_site
from .multipass import (
    SortStats,
    multipass_sort,
    nonequal_sort,
    singlepass_sort,
    size_class_of,
)

__all__ = [
    "ParallelCpuSortModel",
    "SortStats",
    "batch_sort",
    "bitonic_sort_batch",
    "bitonic_steps",
    "compare_exchange_count",
    "multipass_sort",
    "n_steps",
    "next_pow2",
    "nonequal_sort",
    "pad_rows",
    "quicksort_batch",
    "quicksort_per_site",
    "singlepass_sort",
    "size_class_of",
]
