"""Vectorized batch bitonic sorting network.

The network schedule is shared by the functional CPU implementation
(:func:`bitonic_sort_batch`) and the simulated GPU kernel
(:mod:`repro.sortnet.batch`): for array length ``m`` (a power of two) the
network runs ``log2(m) * (log2(m)+1) / 2`` compare-exchange steps, and every
step applies the *same* compare-exchange to all arrays of the batch — the
SIMD-friendly property that makes bitonic sort the right choice on a GPU
(Section IV-C) and, conveniently, also the right choice for NumPy.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def bitonic_steps(m: int) -> Iterator[tuple[int, int]]:
    """Yield the (k, j) compare-exchange steps of the network for size m."""
    if m & (m - 1):
        raise ValueError(f"bitonic network size must be a power of 2, got {m}")
    k = 2
    while k <= m:
        j = k // 2
        while j >= 1:
            yield k, j
            j //= 2
        k *= 2


def n_steps(m: int) -> int:
    """Number of compare-exchange steps for size m: log2(m)(log2(m)+1)/2."""
    lg = int(np.log2(m)) if m > 1 else 0
    return lg * (lg + 1) // 2


def compare_exchange_indices(m: int, k: int, j: int):
    """Index vectors (i, partner, ascending) for one network step.

    Only positions with ``partner > i`` own a compare-exchange; the
    returned arrays cover exactly those m/2 pairs.
    """
    i = np.arange(m)
    partner = i ^ j
    own = partner > i
    i, partner = i[own], partner[own]
    ascending = (i & k) == 0
    return i, partner, ascending


def bitonic_sort_batch(batch: np.ndarray) -> np.ndarray:
    """Sort each row of ``batch`` ascending, in place, via the network.

    ``batch`` must be ``(n_arrays, m)`` with ``m`` a power of two; rows
    shorter than ``m`` should be pre-padded with a +inf-like sentinel.
    Returns ``batch`` for convenience.
    """
    if batch.ndim != 2:
        raise ValueError("batch must be 2-D (n_arrays, m)")
    m = batch.shape[1]
    if m <= 1:
        return batch
    for k, j in bitonic_steps(m):
        i, partner, ascending = compare_exchange_indices(m, k, j)
        a = batch[:, i]
        b = batch[:, partner]
        swap = np.where(ascending[None, :], a > b, a < b)
        batch[:, i] = np.where(swap, b, a)
        batch[:, partner] = np.where(swap, a, b)
    return batch


def compare_exchange_count(m: int) -> int:
    """Total compare-exchange operations per array of size m."""
    return n_steps(m) * (m // 2)
