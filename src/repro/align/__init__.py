"""Alignment substrate: record types and a pigeonhole short-read aligner."""

from .aligner import Aligner, Alignment, KmerIndex, encode_kmers
from .records import AlignmentBatch

__all__ = [
    "Aligner",
    "Alignment",
    "AlignmentBatch",
    "KmerIndex",
    "encode_kmers",
]
