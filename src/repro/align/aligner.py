"""Seed-and-verify short-read aligner.

The paper's main input file "is obtained from sequence alignment software"
(SOAP).  To make the reproduction self-contained, this module implements a
small pigeonhole aligner: a sorted k-mer index over the reference, seed
lookups at ``max_mismatches + 1`` disjoint offsets (if the read has at most
that many mismatches, at least one seed is exact), and full verification of
every candidate.  It reports all hit positions, the hit count (SOAPsnp only
trusts ``hits == 1`` reads for likelihoods), and aligns both strands.

It is quadratic-safe, fully vectorized per read batch, and intended for the
dataset sizes of this reproduction — not a BWA replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import COMPLEMENT_CODE
from ..seqsim.reference import Reference
from .records import AlignmentBatch

#: Seed length; 4^13 ~ 6.7e7 distinct seeds keeps collisions rare.
DEFAULT_SEED_LEN = 13


def encode_kmers(codes: np.ndarray, k: int) -> np.ndarray:
    """2-bit pack every k-mer of a code sequence into int64 keys."""
    n = codes.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    keys = np.zeros(n, dtype=np.int64)
    for j in range(k):
        keys = (keys << 2) | codes[j : j + n].astype(np.int64)
    return keys


@dataclass
class KmerIndex:
    """Sorted k-mer index over one reference sequence."""

    k: int
    sorted_keys: np.ndarray  # int64, ascending
    positions: np.ndarray  # int64, position of each sorted key

    @staticmethod
    def build(reference: Reference, k: int = DEFAULT_SEED_LEN) -> "KmerIndex":
        keys = encode_kmers(reference.codes, k)
        order = np.argsort(keys, kind="stable")
        return KmerIndex(
            k=k, sorted_keys=keys[order], positions=order.astype(np.int64)
        )

    def lookup(self, key: int) -> np.ndarray:
        """Reference positions whose k-mer equals ``key``."""
        lo = np.searchsorted(self.sorted_keys, key, side="left")
        hi = np.searchsorted(self.sorted_keys, key, side="right")
        return self.positions[lo:hi]


@dataclass
class Alignment:
    """One alignment of one read."""

    pos: int
    strand: int
    mismatches: int


class Aligner:
    """Pigeonhole seed-and-verify aligner with mismatch tolerance."""

    def __init__(
        self,
        reference: Reference,
        seed_len: int = DEFAULT_SEED_LEN,
        max_mismatches: int = 2,
        max_hits: int = 100,
    ) -> None:
        if max_mismatches < 0:
            raise ValueError("max_mismatches must be >= 0")
        self.reference = reference
        self.index = KmerIndex.build(reference, seed_len)
        self.max_mismatches = max_mismatches
        self.max_hits = max_hits

    # -- single-read API ---------------------------------------------------

    def align_read(self, read_codes: np.ndarray) -> list[Alignment]:
        """All alignments of one read (both strands), best-first."""
        read_codes = np.asarray(read_codes, dtype=np.uint8)
        found: dict[tuple[int, int], int] = {}
        for strand, codes in (
            (0, read_codes),
            (1, COMPLEMENT_CODE[read_codes[::-1]]),
        ):
            for pos, mm in self._align_one_strand(codes):
                key = (int(pos), strand)
                if key not in found or mm < found[key]:
                    found[key] = mm
        out = [
            Alignment(pos=p, strand=s, mismatches=m)
            for (p, s), m in found.items()
        ]
        out.sort(key=lambda a: (a.mismatches, a.pos, a.strand))
        return out[: self.max_hits]

    def _align_one_strand(self, codes: np.ndarray):
        L = codes.size
        ref = self.reference.codes
        k = self.index.k
        n_seeds = self.max_mismatches + 1
        # Disjoint seed offsets spread across the read (pigeonhole).
        offsets = []
        for i in range(n_seeds):
            off = min(i * k, L - k)
            if off < 0:
                break
            if off not in offsets:
                offsets.append(off)
        candidates: set[int] = set()
        for off in offsets:
            key = 0
            for c in codes[off : off + k]:
                key = (key << 2) | int(c)
            for p in self.index.lookup(key):
                start = int(p) - off
                if 0 <= start <= ref.size - L:
                    candidates.add(start)
        for start in sorted(candidates):
            mm = int(np.count_nonzero(ref[start : start + L] != codes))
            if mm <= self.max_mismatches:
                yield start, mm

    # -- batch API ------------------------------------------------------------

    def align_batch(
        self, reads: np.ndarray, quals: np.ndarray
    ) -> AlignmentBatch:
        """Align a (n, read_len) batch; keep each read's best alignment.

        Reads with no alignment are dropped; the hit count records how many
        positions matched at the best mismatch level (so downstream can
        distinguish unique from repetitive placements).  Bases and quals
        are emitted in forward orientation, as SOAP alignment files store
        them.
        """
        reads = np.asarray(reads, dtype=np.uint8)
        quals = np.asarray(quals, dtype=np.uint8)
        if reads.shape != quals.shape:
            raise ValueError("reads/quals shape mismatch")
        n, read_len = reads.shape
        pos_l, strand_l, hits_l, bases_l, quals_l = [], [], [], [], []
        for i in range(n):
            alns = self.align_read(reads[i])
            if not alns:
                continue
            best = alns[0]
            n_best = sum(1 for a in alns if a.mismatches == best.mismatches)
            pos_l.append(best.pos)
            strand_l.append(best.strand)
            hits_l.append(min(n_best, 255))
            if best.strand == 0:
                bases_l.append(reads[i])
                quals_l.append(quals[i])
            else:
                bases_l.append(COMPLEMENT_CODE[reads[i][::-1]])
                quals_l.append(quals[i][::-1])
        if not pos_l:
            return AlignmentBatch.empty(self.reference.name, read_len)
        pos = np.asarray(pos_l, dtype=np.int64)
        order = np.argsort(pos, kind="stable")
        return AlignmentBatch(
            chrom=self.reference.name,
            read_len=read_len,
            pos=pos[order],
            strand=np.asarray(strand_l, dtype=np.uint8)[order],
            hits=np.asarray(hits_l, dtype=np.uint8)[order],
            bases=np.vstack(bases_l)[order],
            quals=np.vstack(quals_l)[order],
        )
