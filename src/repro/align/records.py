"""Alignment record types bridging the aligner, file formats and pipelines.

The SNP-calling pipelines consume *alignment batches*: column-oriented
NumPy arrays mirroring :class:`~repro.seqsim.reads.ReadSet`, because the
main input file ("hundreds of gigabytes of short read alignment results
ordered by their matched positions") streams through the pipeline window by
window and a row-of-objects representation would dominate runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seqsim.reads import ReadSet


@dataclass
class AlignmentBatch:
    """A slab of alignment records, sorted by matched position."""

    chrom: str
    read_len: int
    pos: np.ndarray  # int64, 0-based leftmost match, sorted ascending
    strand: np.ndarray  # uint8
    hits: np.ndarray  # uint8
    bases: np.ndarray  # uint8 (n, read_len), forward orientation
    quals: np.ndarray  # uint8 (n, read_len), forward orientation

    @property
    def n_reads(self) -> int:
        return int(self.pos.size)

    @staticmethod
    def empty(chrom: str, read_len: int) -> "AlignmentBatch":
        return AlignmentBatch(
            chrom=chrom,
            read_len=read_len,
            pos=np.empty(0, dtype=np.int64),
            strand=np.empty(0, dtype=np.uint8),
            hits=np.empty(0, dtype=np.uint8),
            bases=np.empty((0, read_len), dtype=np.uint8),
            quals=np.empty((0, read_len), dtype=np.uint8),
        )

    @staticmethod
    def from_read_set(rs: ReadSet) -> "AlignmentBatch":
        """Adopt a simulated read set (already position-sorted)."""
        return AlignmentBatch(
            chrom=rs.chrom,
            read_len=rs.read_len,
            pos=rs.pos,
            strand=rs.strand,
            hits=rs.hits,
            bases=rs.bases,
            quals=rs.quals,
        )

    def slice(self, lo: int, hi: int) -> "AlignmentBatch":
        """Rows [lo, hi) as a view-backed batch."""
        return AlignmentBatch(
            chrom=self.chrom,
            read_len=self.read_len,
            pos=self.pos[lo:hi],
            strand=self.strand[lo:hi],
            hits=self.hits[lo:hi],
            bases=self.bases[lo:hi],
            quals=self.quals[lo:hi],
        )

    def select(self, mask_or_index) -> "AlignmentBatch":
        """Rows selected by a boolean mask or index array."""
        return AlignmentBatch(
            chrom=self.chrom,
            read_len=self.read_len,
            pos=self.pos[mask_or_index],
            strand=self.strand[mask_or_index],
            hits=self.hits[mask_or_index],
            bases=self.bases[mask_or_index],
            quals=self.quals[mask_or_index],
        )

    def concat(self, other: "AlignmentBatch") -> "AlignmentBatch":
        """Concatenate two batches (caller guarantees sortedness)."""
        if other.read_len != self.read_len:
            raise ValueError("read length mismatch in concat")
        return AlignmentBatch(
            chrom=self.chrom,
            read_len=self.read_len,
            pos=np.concatenate([self.pos, other.pos]),
            strand=np.concatenate([self.strand, other.strand]),
            hits=np.concatenate([self.hits, other.hits]),
            bases=np.vstack([self.bases, other.bases]),
            quals=np.vstack([self.quals, other.quals]),
        )
