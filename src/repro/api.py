"""The unified pipeline API: engines, registry, and the Pipeline protocol.

Three engines produce bitwise-identical calls (§IV-G): the dense SOAPsnp
baseline, the sparse GSNP algorithm on the CPU, and the same algorithm on
the simulated GPU.  This module names them with :class:`Engine`, describes
how to build each one in a registry of :class:`EngineSpec` entries, and
pins the interface they share as the :class:`Pipeline` protocol — so the
detector facade, the sharded executor (:mod:`repro.exec`) and the bench
harness all dispatch through one code path instead of per-engine branches.

The registry is open: :func:`register_engine` admits additional engines
(e.g. an experimental backend) and every error message and CLI choice list
derives from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from .constants import DEFAULT_WINDOW_GSNP, DEFAULT_WINDOW_SOAPSNP
from .core.likelihood import OPTIMIZED, LikelihoodVariant
from .core.pipeline import GsnpPipeline
from .soapsnp.pipeline import SoapsnpPipeline


class Engine(str, Enum):
    """The three interchangeable SNP-calling engines."""

    GSNP = "gsnp"  # sparse algorithm on the simulated GPU
    GSNP_CPU = "gsnp_cpu"  # sparse algorithm on the host
    SOAPSNP = "soapsnp"  # dense baseline on the host

    def __str__(self) -> str:  # argparse/message friendliness
        return self.value


@runtime_checkable
class Pipeline(Protocol):
    """What every engine's pipeline exposes.

    ``run`` calls SNPs over a dataset (optionally restricted to a
    ``site_range`` of whole windows, with a shared precomputed
    ``calibration``) and returns a result carrying ``table`` (the
    :class:`~repro.formats.cns.ResultTable`) and ``profile`` (the
    :class:`~repro.bench.events.RunProfile` event records).  ``calibrate``
    performs the one-time ``cal_p_matrix`` input pass whose product can be
    shared across shards.
    """

    window_size: int

    def calibrate(self, dataset: Any, reads: Any = None) -> Any: ...

    def run(
        self,
        dataset: Any,
        output_path: Any = None,
        *,
        site_range: Optional[tuple[int, int]] = None,
        calibration: Any = None,
        reads: Any = None,
    ) -> Any: ...


@dataclass(frozen=True)
class EngineSpec:
    """Registry entry describing how to build one engine's pipeline."""

    name: str
    summary: str
    factory: Callable[..., Pipeline]
    #: Hard window-size cap (the dense baseline cannot afford big windows).
    max_window: Optional[int] = None
    #: Display name used by bench tables/figures (defaults to ``name``).
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.name)


def _gsnp_factory(params, window_size, variant, device) -> Pipeline:
    return GsnpPipeline(
        params=params, window_size=window_size, mode="gpu",
        variant=variant, device=device,
    )


def _gsnp_cpu_factory(params, window_size, variant, device) -> Pipeline:
    return GsnpPipeline(
        params=params, window_size=window_size, mode="cpu", variant=variant
    )


def _soapsnp_factory(params, window_size, variant, device) -> Pipeline:
    return SoapsnpPipeline(params=params, window_size=window_size)


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> None:
    """Add (or replace) an engine in the registry."""
    _REGISTRY[spec.name] = spec


register_engine(EngineSpec(
    name=Engine.GSNP.value,
    summary="sparse base_word algorithm on the simulated GPU",
    factory=_gsnp_factory,
    label="GSNP",
))
register_engine(EngineSpec(
    name=Engine.GSNP_CPU.value,
    summary="sparse base_word algorithm on the host CPU",
    factory=_gsnp_cpu_factory,
    label="GSNP_CPU",
))
register_engine(EngineSpec(
    name=Engine.SOAPSNP.value,
    summary="dense base_occ baseline (SOAPsnp)",
    factory=_soapsnp_factory,
    max_window=DEFAULT_WINDOW_SOAPSNP,
    label="SOAPsnp",
))


def engine_names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def resolve_engine(engine: Engine | str) -> Engine | str:
    """Normalize an engine argument against the registry.

    Accepts an :class:`Engine` member or its string value (the legacy
    spelling); returns the :class:`Engine` member when one exists, else the
    validated registered name.  Raises ``ValueError`` naming every
    registered engine otherwise.
    """
    name = engine.value if isinstance(engine, Engine) else engine
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {engine!r}: valid engines are "
            + ", ".join(repr(n) for n in engine_names())
        )
    try:
        return Engine(name)
    except ValueError:
        return name  # registered extension engine without an enum member


def get_engine_spec(engine: Engine | str) -> EngineSpec:
    """The registry entry for an engine (after name resolution)."""
    return _REGISTRY[str(resolve_engine(engine))]


def effective_window(engine: Engine | str, window_size: int) -> int:
    """The window size the engine will actually run (registry cap applied)."""
    spec = get_engine_spec(engine)
    if spec.max_window is not None:
        return min(window_size, spec.max_window)
    return window_size


def create_pipeline(
    engine: Engine | str = Engine.GSNP,
    *,
    params=None,
    window_size: int = DEFAULT_WINDOW_GSNP,
    variant: LikelihoodVariant = OPTIMIZED,
    device=None,
    prefetch: bool | None = None,
    cache: bool | None = None,
    fusion: bool | None = None,
    megabatch: int | None = None,
) -> Pipeline:
    """Build the pipeline for an engine through the registry.

    ``prefetch``/``cache`` toggle the throughput engine (double-buffered
    window streaming / persistent device tables) and ``fusion``/
    ``megabatch`` the ragged-megabatch launch plan on pipelines that
    support them; ``None`` keeps each pipeline's own default.  Registered
    extension factories keep the legacy 4-argument signature — the
    toggles are applied as attributes only when the built pipeline
    exposes them.
    """
    spec = get_engine_spec(engine)
    if spec.max_window is not None:
        window_size = min(window_size, spec.max_window)
    pipe = spec.factory(params, window_size, variant, device)
    toggles = (
        ("prefetch", prefetch),
        ("cache", cache),
        ("fusion", fusion),
        ("megabatch", megabatch),
    )
    for attr, value in toggles:
        if value is not None and hasattr(pipe, attr):
            setattr(pipe, attr, value)
    return pipe


__all__ = [
    "Engine",
    "EngineSpec",
    "Pipeline",
    "create_pipeline",
    "effective_window",
    "engine_names",
    "get_engine_spec",
    "register_engine",
    "resolve_engine",
]
