"""The unified pipeline API: engines, the registry, and :class:`JobSpec`.

Three engines produce bitwise-identical calls (§IV-G): the dense SOAPsnp
baseline, the sparse GSNP algorithm on the CPU, and the same algorithm on
the simulated GPU.  This module names them with :class:`Engine`, describes
how to build each one in a registry of :class:`EngineSpec` entries, and
pins the interface they share as the :class:`Pipeline` protocol — so the
detector facade, the sharded executor (:mod:`repro.exec`) and the bench
harness all dispatch through one code path instead of per-engine branches.

:class:`JobSpec` is the single source of truth for every calling-job knob
(engine, window, variant, throughput toggles, parallelism, robustness).
One frozen dataclass feeds all four former spellings:

* ``create_pipeline(spec=...)`` builds a pipeline from it;
* ``repro.exec.execute(spec=...)`` derives its ``ExecConfig`` from it;
* the CLI argument groups of ``gsnp-call``/``gsnp-submit`` are generated
  from its field metadata (:meth:`JobSpec.add_cli_args`);
* the ``gsnp-serve`` daemon uses its JSON form (:meth:`JobSpec.to_wire`)
  as the submit protocol's wire payload.

Legacy keyword spellings (``create_pipeline(window_size=...)``,
``execute(ds, workers=4)``) keep working through a thin shim that emits a
``DeprecationWarning``; ``gsnp-lint``'s GSNP108 rule flags new code using
them.  The registry is open: :func:`register_engine` admits additional
engines (e.g. an experimental backend) and every error message and CLI
choice list derives from it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from .constants import DEFAULT_WINDOW_GSNP, DEFAULT_WINDOW_SOAPSNP
from .core.likelihood import ALL_VARIANTS, LikelihoodVariant
from .core.pipeline import GsnpPipeline
from .faults.plan import FaultPlan, FaultSpec
from .gpusim.launchplan import MEGABATCH_WINDOWS
from .soapsnp.pipeline import SoapsnpPipeline


class Engine(str, Enum):
    """The three interchangeable SNP-calling engines."""

    GSNP = "gsnp"  # sparse algorithm on the simulated GPU
    GSNP_CPU = "gsnp_cpu"  # sparse algorithm on the host
    SOAPSNP = "soapsnp"  # dense baseline on the host

    def __str__(self) -> str:  # argparse/message friendliness
        return self.value


@runtime_checkable
class Pipeline(Protocol):
    """What every engine's pipeline exposes.

    ``run`` calls SNPs over a dataset (optionally restricted to a
    ``site_range`` of whole windows, with a shared precomputed
    ``calibration``) and returns a result carrying ``table`` (the
    :class:`~repro.formats.cns.ResultTable`) and ``profile`` (the
    :class:`~repro.bench.events.RunProfile` event records).  ``calibrate``
    performs the one-time ``cal_p_matrix`` input pass whose product can be
    shared across shards.
    """

    window_size: int

    def calibrate(self, dataset: Any, reads: Any = None) -> Any: ...

    def run(
        self,
        dataset: Any,
        output_path: Any = None,
        *,
        site_range: Optional[tuple[int, int]] = None,
        calibration: Any = None,
        reads: Any = None,
    ) -> Any: ...


@dataclass(frozen=True)
class EngineSpec:
    """Registry entry describing how to build one engine's pipeline."""

    name: str
    summary: str
    factory: Callable[..., Pipeline]
    #: Hard window-size cap (the dense baseline cannot afford big windows).
    max_window: Optional[int] = None
    #: Display name used by bench tables/figures (defaults to ``name``).
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.name)


def _gsnp_factory(params, window_size, variant, device) -> Pipeline:
    return GsnpPipeline(
        params=params, window_size=window_size, mode="gpu",
        variant=variant, device=device,
    )


def _gsnp_cpu_factory(params, window_size, variant, device) -> Pipeline:
    return GsnpPipeline(
        params=params, window_size=window_size, mode="cpu", variant=variant
    )


def _soapsnp_factory(params, window_size, variant, device) -> Pipeline:
    return SoapsnpPipeline(params=params, window_size=window_size)


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> None:
    """Add (or replace) an engine in the registry."""
    _REGISTRY[spec.name] = spec


register_engine(EngineSpec(
    name=Engine.GSNP.value,
    summary="sparse base_word algorithm on the simulated GPU",
    factory=_gsnp_factory,
    label="GSNP",
))
register_engine(EngineSpec(
    name=Engine.GSNP_CPU.value,
    summary="sparse base_word algorithm on the host CPU",
    factory=_gsnp_cpu_factory,
    label="GSNP_CPU",
))
register_engine(EngineSpec(
    name=Engine.SOAPSNP.value,
    summary="dense base_occ baseline (SOAPsnp)",
    factory=_soapsnp_factory,
    max_window=DEFAULT_WINDOW_SOAPSNP,
    label="SOAPsnp",
))


def engine_names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def resolve_engine(engine: Engine | str) -> Engine | str:
    """Normalize an engine argument against the registry.

    Accepts an :class:`Engine` member or its string value (the legacy
    spelling); returns the :class:`Engine` member when one exists, else the
    validated registered name.  Raises ``ValueError`` naming every
    registered engine otherwise.
    """
    name = engine.value if isinstance(engine, Engine) else engine
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {engine!r}: valid engines are "
            + ", ".join(repr(n) for n in engine_names())
        )
    try:
        return Engine(name)
    except ValueError:
        return name  # registered extension engine without an enum member


def get_engine_spec(engine: Engine | str) -> EngineSpec:
    """The registry entry for an engine (after name resolution)."""
    return _REGISTRY[str(resolve_engine(engine))]


def effective_window(engine: Engine | str, window_size: int) -> int:
    """The window size the engine will actually run (registry cap applied)."""
    spec = get_engine_spec(engine)
    if spec.max_window is not None:
        return min(window_size, spec.max_window)
    return window_size


#: name -> LikelihoodVariant, for wire/CLI spellings of the kernel variant.
VARIANTS_BY_NAME: dict[str, LikelihoodVariant] = {
    v.name: v for v in ALL_VARIANTS
}

#: JSON wire-format version of :meth:`JobSpec.to_wire` payloads.
JOBSPEC_WIRE_VERSION = 1


def _cli(group: str, *flags: str, positional: bool = False, **kwargs):
    """Field metadata describing how one JobSpec field appears on a CLI."""
    return {
        "cli": {
            "flags": flags,
            "group": group,
            "positional": positional,
            "kwargs": kwargs,
        }
    }


@dataclass(frozen=True)
class JobSpec:
    """One calling job, fully described: the single source of truth.

    Every knob that was previously spelled independently in
    ``create_pipeline`` kwargs, ``exec.ExecConfig``,
    ``GsnpDetector.from_files`` and ~15 CLI flags lives here exactly once.
    The dataclass is frozen (use :func:`dataclasses.replace` to derive
    variants), picklable (it ships to executor workers), and JSON-safe via
    :meth:`to_wire`/:meth:`from_wire` — the ``gsnp-serve`` submit payload
    is exactly this object.
    """

    # -- inputs / outputs --------------------------------------------------
    fasta: Optional[str] = field(default=None, metadata=_cli(
        "input/output", "fasta", positional=True, nargs="?",
        help="reference FASTA file",
    ))
    soap: Optional[str] = field(default=None, metadata=_cli(
        "input/output", "soap", positional=True, nargs="?",
        help="SOAP alignment file",
    ))
    samples: tuple = field(default=(), metadata=_cli(
        "input/output", "--samples", nargs="+", default=(),
        metavar="SOAP",
        help="additional cohort sample SOAP files sharing the reference "
        "(the positional soap file is sample 0); the cohort runs with one "
        "pooled calibration, one resident score-table set and sample-major "
        "fused launches",
    ))
    prior: Optional[str] = field(default=None, metadata=_cli(
        "input/output", "--prior",
        help="known-SNP prior file",
    ))
    output: Optional[str] = field(default=None, metadata=_cli(
        "input/output", "-o", "--output",
        help="result file (text, or GSNP compressed with --compressed)",
    ))
    compressed: bool = field(default=False, metadata=_cli(
        "input/output", "--compressed", action="store_true",
        help="write GSNP compressed output instead of text",
    ))
    min_quality: int = field(default=13, metadata=_cli(
        "input/output", "--min-quality", type=int,
        help="quality cutoff for the reported SNP-call count",
    ))

    # -- engine & algorithm ------------------------------------------------
    engine: str = field(default=Engine.GSNP.value, metadata=_cli(
        "engine", "--engine",
        help="SNP-calling engine",
    ))
    window: int = field(default=DEFAULT_WINDOW_GSNP, metadata=_cli(
        "engine", "--window", type=int,
        help="sites per pipeline window (engines may cap it)",
    ))
    variant: "str | LikelihoodVariant" = field(
        default="optimized", metadata=_cli(
            "engine", "--variant",
            help="likelihood kernel variant",
        )
    )

    # -- throughput engine -------------------------------------------------
    prefetch: bool = field(default=True, metadata=_cli(
        "throughput", "--prefetch", action="boolean_optional",
        help="double-buffered window streaming: decode window N+1 while "
        "window N computes (results are bitwise identical either way)",
    ))
    cache: bool = field(default=True, metadata=_cli(
        "throughput", "--no-cache", action="store_false",
        help="disable persistent device residency (re-upload score tables "
        "on every run/shard instead of once per worker)",
    ))
    fusion: bool = field(default=False, metadata=_cli(
        "throughput", "--fusion", action="boolean_optional",
        help="fused ragged-megabatch launching: concatenate windows into "
        "one launch plan so each kernel chain launches once per megabatch "
        "(gsnp engine only; results are bitwise identical either way)",
    ))
    megabatch: int = field(default=MEGABATCH_WINDOWS, metadata=_cli(
        "throughput", "--megabatch", type=int,
        help="windows concatenated per fused launch plan",
    ))

    # -- parallel execution ------------------------------------------------
    workers: int = field(default=1, metadata=_cli(
        "execution", "--workers", type=int,
        help="worker processes; >1 runs the sharded parallel executor",
    ))
    shard_size: Optional[int] = field(default=None, metadata=_cli(
        "execution", "--shard-size", type=int,
        help="sites per shard (snapped up to a window multiple)",
    ))
    shard_timeout: Optional[float] = field(default=None, metadata=_cli(
        "execution", "--shard-timeout", type=float,
        help="per-shard wall-clock deadline in seconds (process pools "
        "only); an expired shard is killed and retried with backoff",
    ))
    devices: int = field(default=1, metadata=_cli(
        "execution", "--devices", type=int,
        help="modeled GPU devices; >1 runs the heterogeneous multi-device "
        "scheduler (work-stealing shard deques over a DevicePool sharing "
        "one PCIe link; gsnp engine only, output bitwise identical to "
        "serial for any count)",
    ))
    cpu_steal: bool = field(default=False, metadata=_cli(
        "execution", "--cpu-steal", action="boolean_optional",
        help="add the sparse host engine (gsnp_cpu) as an extra "
        "work-stealing lane alongside the device pool, so the CPU picks "
        "up straggler windows (gsnp engine only)",
    ))

    # -- robustness --------------------------------------------------------
    journal: Optional[str] = field(default=None, metadata=_cli(
        "robustness", "--journal",
        help="shard journal directory: commit each completed shard so an "
        "interrupted run can be resumed",
    ))
    resume: bool = field(default=False, metadata=_cli(
        "robustness", "--resume", action="store_true",
        help="skip shards already committed to --journal; the merged "
        "output is bitwise identical to an uninterrupted run",
    ))
    quarantine: Optional[str] = field(default=None, metadata=_cli(
        "robustness", "--quarantine",
        help="append malformed input records (with file:line context) to "
        "this file and continue, instead of failing the run",
    ))
    sanitize: bool = field(default=False, metadata=_cli(
        "robustness", "--sanitize", action="store_true",
        help="run the simulated device with the kernel sanitizer enabled "
        "(races, hazards, uninitialized reads, leaks); serial engine only",
    ))

    # -- chaos (no CLI flag: schedules are built programmatically) ---------
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if isinstance(self.engine, Engine):
            object.__setattr__(self, "engine", self.engine.value)
        # Wire payloads and argparse both deliver lists; keep the frozen
        # spec hashable/picklable with a tuple either way.
        if self.samples is None:
            object.__setattr__(self, "samples", ())
        elif not isinstance(self.samples, tuple):
            object.__setattr__(self, "samples", tuple(self.samples))

    # -- derived views -----------------------------------------------------

    def resolved_variant(self) -> LikelihoodVariant:
        """The :class:`LikelihoodVariant` object this spec names."""
        if isinstance(self.variant, LikelihoodVariant):
            return self.variant
        try:
            return VARIANTS_BY_NAME[self.variant]
        except KeyError:
            raise ValueError(
                f"unknown likelihood variant {self.variant!r}; valid "
                "variants: " + ", ".join(sorted(VARIANTS_BY_NAME))
            ) from None

    @property
    def variant_name(self) -> str:
        """The variant's wire spelling (its registered name)."""
        return getattr(self.variant, "name", str(self.variant))

    @property
    def is_cohort(self) -> bool:
        """Whether this job calls a multi-sample cohort."""
        return bool(self.samples)

    @property
    def n_samples(self) -> int:
        """Cohort size (the primary soap input is sample 0)."""
        return 1 + len(self.samples)

    @property
    def uses_device_pool(self) -> bool:
        """Whether this job runs the heterogeneous multi-device scheduler."""
        return self.devices > 1 or self.cpu_steal

    @property
    def uses_executor(self) -> bool:
        """Whether this job routes through the sharded executor."""
        return (
            self.workers > 1
            or self.shard_size is not None
            or self.uses_device_pool
        )

    def validate(self, require_inputs: bool = False) -> "JobSpec":
        """Raise ``ValueError`` on incoherent field combinations.

        Returns ``self`` so call sites can chain
        ``spec.validate().normalized()``.
        """
        resolve_engine(self.engine)
        self.resolved_variant()
        if self.resume and not self.journal:
            raise ValueError("resume=True requires a journal directory")
        if (
            self.sanitize
            and not self.uses_device_pool
            and (self.workers > 1 or self.shard_size is not None)
        ):
            raise ValueError(
                "sanitize=True requires the serial engine (workers=1, no "
                "shard_size): the sharded executor owns its per-shard "
                "devices.  The multi-device scheduler (--devices/"
                "--cpu-steal) does support the sanitizer — its lanes are "
                "thread-confined"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.uses_device_pool and self.engine != Engine.GSNP.value:
            raise ValueError(
                "devices>1 / cpu_steal require the gsnp engine: the "
                "heterogeneous scheduler pairs the device pool with the "
                "gsnp_cpu steal lane"
            )
        if self.megabatch < 1:
            raise ValueError("megabatch must be >= 1")
        if self.is_cohort and self.engine not in (
            Engine.GSNP.value, Engine.GSNP_CPU.value
        ):
            raise ValueError(
                "cohort samples require the gsnp or gsnp_cpu engine: the "
                "dense baseline has no sample-major batched path"
            )
        if require_inputs and not (self.fasta and self.soap):
            raise ValueError("a runnable job needs fasta and soap inputs")
        return self

    def normalized(self) -> "JobSpec":
        """The spec with executor-routing defaults applied.

        Journalling and shard deadlines live in the sharded executor; a
        serial invocation that asks for either gets enough shards to
        checkpoint between (``shard_size = window``), exactly as the CLI
        has always done.
        """
        if (
            (self.journal or self.shard_timeout)
            and self.workers == 1
            and self.shard_size is None
        ):
            return replace(self, shard_size=self.window)
        return self

    # -- wire format (the gsnp-serve submit payload) -----------------------

    def to_wire(self) -> dict:
        """JSON-safe dict form; the serve protocol's submit payload."""
        out: dict = {"version": JOBSPEC_WIRE_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "variant":
                value = self.variant_name
            elif f.name == "faults" and value is not None:
                value = {
                    "seed": value.seed,
                    "specs": [
                        {
                            "site": s.site, "kind": s.kind, "key": s.key,
                            "after": s.after, "times": s.times, "arg": s.arg,
                        }
                        for s in value.specs
                    ],
                }
            out[f.name] = value
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "JobSpec":
        """Rebuild a spec from :meth:`to_wire` output (strict on keys)."""
        if not isinstance(payload, dict):
            raise ValueError(f"JobSpec payload must be a dict, got "
                             f"{type(payload).__name__}")
        data = dict(payload)
        version = data.pop("version", JOBSPEC_WIRE_VERSION)
        if version != JOBSPEC_WIRE_VERSION:
            raise ValueError(
                f"unsupported JobSpec wire version {version!r} "
                f"(expected {JOBSPEC_WIRE_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                "unknown JobSpec field(s): " + ", ".join(unknown)
            )
        faults = data.get("faults")
        if faults is not None and not isinstance(faults, FaultPlan):
            data["faults"] = FaultPlan(
                tuple(FaultSpec(**s) for s in faults.get("specs", ())),
                seed=faults.get("seed"),
            )
        return cls(**data)

    # -- CLI derivation ----------------------------------------------------

    @classmethod
    def cli_fields(cls):
        """(field, cli-metadata) pairs for every CLI-exposed field."""
        return [
            (f, f.metadata["cli"]) for f in fields(cls) if "cli" in f.metadata
        ]

    @classmethod
    def add_cli_args(cls, parser, inputs: bool = True) -> None:
        """Add the job's argument groups to an ``argparse`` parser.

        Flags, defaults, choice lists and help strings all derive from the
        field metadata, so the CLI can never drift from the dataclass.
        ``inputs=False`` skips the positional ``fasta``/``soap`` operands
        (``gsnp-submit --stats`` style invocations take no inputs).
        """
        import argparse

        groups: dict[str, Any] = {}
        for f, cli in cls.cli_fields():
            if cli["positional"] and not inputs:
                continue
            group = groups.setdefault(
                cli["group"], parser.add_argument_group(cli["group"])
            )
            kwargs = dict(cli["kwargs"])
            action = kwargs.pop("action", None)
            if action == "boolean_optional":
                kwargs["action"] = argparse.BooleanOptionalAction
            elif action is not None:
                kwargs["action"] = action
            if f.name == "engine":
                kwargs["choices"] = engine_names()
            elif f.name == "variant":
                kwargs["choices"] = tuple(VARIANTS_BY_NAME)
            if cli["positional"]:
                group.add_argument(*cli["flags"], **kwargs)
            else:
                kwargs.setdefault("default", f.default)
                kwargs.setdefault("dest", f.name)
                group.add_argument(*cli["flags"], **kwargs)

    @classmethod
    def from_cli_args(cls, namespace) -> "JobSpec":
        """Build a spec from a parsed namespace of :meth:`add_cli_args`."""
        values = {}
        for f, _cli_meta in cls.cli_fields():
            if hasattr(namespace, f.name):
                values[f.name] = getattr(namespace, f.name)
        return cls(**values)


#: Field defaults, for "was a non-default value requested?" checks.
_SPEC_DEFAULTS = JobSpec()

#: The create_pipeline kwargs superseded by JobSpec (the GSNP108 set).
LEGACY_PIPELINE_KWARGS = (
    "window_size", "variant", "prefetch", "cache", "fusion", "megabatch",
)


def _spec_from_legacy(engine, window_size, variant, toggles: dict) -> JobSpec:
    """The deprecation shim: fold legacy kwargs into a JobSpec."""
    values: dict = {"engine": str(resolve_engine(engine))}
    if window_size is not None:
        values["window"] = window_size
    if variant is not None:
        values["variant"] = variant
    for name, value in toggles.items():
        if value is not None:
            values[name] = value
    return JobSpec(**values)


def create_pipeline(
    engine: Engine | str | None = None,
    *,
    spec: Optional[JobSpec] = None,
    params=None,
    device=None,
    window_size: Optional[int] = None,
    variant: Optional[LikelihoodVariant] = None,
    prefetch: Optional[bool] = None,
    cache: Optional[bool] = None,
    fusion: Optional[bool] = None,
    megabatch: Optional[int] = None,
) -> Pipeline:
    """Build the pipeline for an engine through the registry.

    The preferred call is ``create_pipeline(spec=JobSpec(...))`` —
    ``params`` (a :class:`~repro.soapsnp.model.CallingParams`) and
    ``device`` (a prebuilt simulated device) stay separate because they
    are runtime objects, not job configuration.  The legacy spelling
    (``engine`` plus ``window_size``/``variant``/toggle kwargs) keeps
    working through a shim that emits a ``DeprecationWarning``;
    ``gsnp-lint`` GSNP108 flags it in new code.

    Registered extension factories keep the legacy 4-argument signature —
    the throughput toggles are applied as attributes only when the built
    pipeline exposes them, and a requested non-default toggle the engine
    does not expose raises a ``RuntimeWarning`` instead of being silently
    dropped.
    """
    legacy = {
        "window_size": window_size, "variant": variant, "prefetch": prefetch,
        "cache": cache, "fusion": fusion, "megabatch": megabatch,
    }
    explicit = {k for k, v in legacy.items() if v is not None}
    if spec is not None:
        if engine is not None or explicit:
            raise ValueError(
                "create_pipeline(spec=...) does not combine with the "
                "legacy engine/config kwargs: set those fields on the "
                "JobSpec instead"
            )
    else:
        if explicit:
            warnings.warn(
                "create_pipeline("
                + ", ".join(f"{k}=..." for k in sorted(explicit))
                + ") is deprecated; pass spec=JobSpec(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        spec = _spec_from_legacy(
            engine if engine is not None else Engine.GSNP,
            window_size,
            variant,
            {
                "prefetch": prefetch, "cache": cache,
                "fusion": fusion, "megabatch": megabatch,
            },
        )
    engine_spec = get_engine_spec(spec.engine)
    window = effective_window(spec.engine, spec.window)
    pipe = engine_spec.factory(params, window, spec.resolved_variant(), device)
    for attr in ("prefetch", "cache", "fusion", "megabatch"):
        value = getattr(spec, attr)
        if hasattr(pipe, attr):
            setattr(pipe, attr, value)
        elif value != getattr(_SPEC_DEFAULTS, attr):
            warnings.warn(
                f"engine {spec.engine!r} does not expose {attr!r}; the "
                f"requested {attr}={value!r} is ignored",
                RuntimeWarning,
                stacklevel=2,
            )
    return pipe


__all__ = [
    "Engine",
    "EngineSpec",
    "JOBSPEC_WIRE_VERSION",
    "JobSpec",
    "LEGACY_PIPELINE_KWARGS",
    "Pipeline",
    "VARIANTS_BY_NAME",
    "create_pipeline",
    "effective_window",
    "engine_names",
    "get_engine_spec",
    "register_engine",
    "resolve_engine",
]
