"""Command-line tools: simulate, call, serve, decompress, bench, lint.

The entry points mirror how the original system is operated:

* ``gsnp-simulate`` — generate a synthetic dataset (reference FASTA, SOAP
  alignment file, known-SNP prior file).
* ``gsnp-call`` — run SNP detection over those files with any engine
  (``gsnp``, ``gsnp_cpu`` or ``soapsnp``) and write text or compressed
  output.  Every knob is one :class:`~repro.api.JobSpec` field; the
  argument groups here derive from the dataclass metadata.
* ``gsnp-serve`` / ``gsnp-submit`` — the resident calling service: a
  daemon that keeps calibration and device state warm across jobs, and
  the client that submits :class:`~repro.api.JobSpec` jobs to it.
* ``gsnp-decompress`` — the decompression tool of Section V-B: convert a
  compressed result back to SOAPsnp text, optionally filtered.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .align.records import AlignmentBatch
from .api import JobSpec, engine_names
from .compress.reader import CompressedResultReader
from .core.detector import GsnpDetector
from .formats.cns import write_cns
from .formats.fasta import write_fasta
from .formats.prior import write_prior
from .formats.soap import write_soap
from .seqsim.datasets import DatasetSpec, generate_dataset


def main_simulate(argv=None) -> int:
    """Generate a synthetic dataset and write its three input files."""
    p = argparse.ArgumentParser(
        prog="gsnp-simulate", description=main_simulate.__doc__
    )
    p.add_argument("--name", default="chrSim")
    p.add_argument("--sites", type=int, default=50_000)
    p.add_argument("--depth", type=float, default=10.0)
    p.add_argument("--coverage", type=float, default=0.85)
    p.add_argument("--read-len", type=int, default=100)
    p.add_argument("--snp-rate", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prefix", default="simdata", help="output file prefix")
    args = p.parse_args(argv)

    spec = DatasetSpec(
        name=args.name,
        n_sites=args.sites,
        depth=args.depth,
        coverage=args.coverage,
        read_len=args.read_len,
        snp_rate=args.snp_rate,
        seed=args.seed,
    )
    ds = generate_dataset(spec)
    write_fasta(f"{args.prefix}.fa", [ds.reference])
    write_soap(f"{args.prefix}.soap", AlignmentBatch.from_read_set(ds.reads))
    write_prior(f"{args.prefix}.prior", ds.reference.name, ds.prior)
    np.savetxt(
        f"{args.prefix}.truth",
        np.column_stack(
            [ds.diploid.snp_positions + 1, ds.diploid.snp_genotypes]
        ),
        fmt="%d",
        header="pos allele1 allele2",
    )
    print(
        f"wrote {args.prefix}.fa / .soap / .prior / .truth "
        f"({ds.reads.n_reads} reads, {ds.diploid.n_snps} planted SNPs)"
    )
    return 0


def main_call(argv=None) -> int:
    """Run SNP detection over (fasta, soap, prior) input files."""
    p = argparse.ArgumentParser(prog="gsnp-call", description=main_call.__doc__)
    JobSpec.add_cli_args(p)
    args = p.parse_args(argv)
    try:
        spec = JobSpec.from_cli_args(args).validate(require_inputs=True)
    except ValueError as exc:
        p.error(str(exc))
    spec = spec.normalized()

    det = GsnpDetector.from_files(spec.fasta, spec.soap, spec.prior, spec=spec)
    t0 = time.perf_counter()
    result = det.run()
    wall = time.perf_counter() - t0

    # Output rendering and the summary line are shared with gsnp-serve:
    # served bytes are bitwise identical to these by construction.
    from .serve.runner import job_summary, write_job_output

    if spec.output:
        write_job_output(result, spec)
    print(
        job_summary(result, spec, wall)
        + (f" -> {spec.output}" if spec.output else "")
    )
    return 0


def main_serve(argv=None) -> int:
    """Run the resident gsnp-serve daemon on a Unix socket."""
    p = argparse.ArgumentParser(
        prog="gsnp-serve", description=main_serve.__doc__
    )
    p.add_argument(
        "--socket", default="gsnp-serve.sock",
        help="Unix socket path to listen on (the OS caps it at ~107 bytes)",
    )
    p.add_argument(
        "--state-dir", default="gsnp-serve-state",
        help="durable state: job ledger, shard journals, calibration store",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker threads (each keeps its own resident device state)",
    )
    p.add_argument(
        "--max-queued", type=int, default=16,
        help="admission cap on live (queued + running) jobs",
    )
    p.add_argument(
        "--tenant-quota", type=int, default=None,
        help="admission cap on live jobs per tenant (default: unlimited)",
    )
    p.add_argument(
        "--max-datasets", type=int, default=4,
        help="parsed-dataset LRU cache size",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="run the in-process service smoke scenario (two identical "
        "jobs + an over-quota one; asserts CLI parity, cache hits and "
        "clean shutdown) and exit",
    )
    args = p.parse_args(argv)

    if args.smoke:
        from .serve.smoke import run_smoke

        report = run_smoke()
        print("serve-smoke:", "OK" if report["ok"] else "FAILED")
        return 0 if report["ok"] else 1

    import signal

    from .serve import GsnpServer, ServeConfig

    server = GsnpServer(ServeConfig(
        socket_path=args.socket,
        state_dir=args.state_dir,
        workers=args.workers,
        max_queued=args.max_queued,
        tenant_quota=args.tenant_quota,
        max_datasets=args.max_datasets,
    ))

    def _stop(signum, frame):
        server.shutdown(drain=False)

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    server.start()
    if server.recovered_jobs:
        print(
            f"recovered {len(server.recovered_jobs)} pending job(s): "
            + ", ".join(server.recovered_jobs),
            flush=True,
        )
    print(
        f"gsnp-serve: listening on {args.socket} "
        f"({args.workers} worker(s), state in {args.state_dir})",
        flush=True,
    )
    server.serve_forever()
    print("gsnp-serve: bye")
    return 0


def main_submit(argv=None) -> int:
    """Submit a calling job to a running gsnp-serve daemon."""
    p = argparse.ArgumentParser(
        prog="gsnp-submit", description=main_submit.__doc__
    )
    p.add_argument(
        "--socket", default="gsnp-serve.sock",
        help="Unix socket of the daemon",
    )
    p.add_argument("--tenant", default="default", help="tenant id for quotas")
    p.add_argument(
        "--priority", type=int, default=0,
        help="scheduling priority (higher runs first)",
    )
    p.add_argument(
        "--no-wait", dest="wait", action="store_false",
        help="return right after admission instead of streaming the job",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print the daemon's scheduler/cache counters and exit",
    )
    p.add_argument("--ping", action="store_true", help="liveness probe")
    p.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to drain live jobs and stop",
    )
    JobSpec.add_cli_args(p)
    args = p.parse_args(argv)

    import json

    from .serve.client import ServeClient
    from .serve.protocol import ProtocolError

    client = ServeClient(args.socket)
    try:
        if args.ping:
            print(json.dumps(client.ping(), sort_keys=True))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown(drain=True)
            print("gsnp-submit: daemon stopping")
            return 0
        try:
            spec = JobSpec.from_cli_args(args).validate(require_inputs=True)
        except ValueError as exc:
            p.error(str(exc))
        result = client.submit(
            spec, tenant=args.tenant, priority=args.priority, wait=args.wait
        )
    except (OSError, ProtocolError) as exc:
        print(f"gsnp-submit: {exc}", file=sys.stderr)
        return 1
    if result.status == "rejected":
        print(
            f"gsnp-submit: rejected ({result.code}): {result.error}",
            file=sys.stderr,
        )
        return 1
    if result.status == "accepted":
        print(f"accepted: {result.job_id}")
        return 0
    if result.status != "done":
        print(
            f"gsnp-submit: job {result.job_id} failed: {result.error}",
            file=sys.stderr,
        )
        return 1
    if result.output is not None:
        # Inline job: the result bytes stream to stdout, summary to stderr.
        sys.stdout.buffer.write(result.output)
        sys.stdout.buffer.flush()
        print(result.summary, file=sys.stderr)
    else:
        print(f"{result.summary} -> {spec.output}")
    return 0


def main_decompress(argv=None) -> int:
    """Decompress a GSNP result file back to SOAPsnp text."""
    p = argparse.ArgumentParser(
        prog="gsnp-decompress", description=main_decompress.__doc__
    )
    p.add_argument("input")
    p.add_argument("-o", "--output", default=None, help="default: stdout")
    p.add_argument("--snps-only", action="store_true")
    p.add_argument(
        "--range",
        default=None,
        help="1-based position range LO:HI (half-open)",
    )
    args = p.parse_args(argv)

    reader = CompressedResultReader(args.input)
    if args.range:
        lo, hi = (int(x) for x in args.range.split(":"))
        table = reader.query_range(lo, hi)
    elif args.snps_only:
        table = reader.query_snps()
    else:
        table = reader.read_all()
    if args.output:
        nbytes = write_cns(args.output, table)
        print(f"wrote {table.n_sites} rows ({nbytes} bytes) to {args.output}")
    else:
        from .formats.cns import format_rows

        sys.stdout.write(format_rows(table).decode())
    return 0


def main_bench(argv=None) -> int:
    """Regenerate the paper's tables/figures as CSV files."""
    p = argparse.ArgumentParser(
        prog="gsnp-bench", description=main_bench.__doc__
    )
    p.add_argument("-o", "--out-dir", default="results")
    p.add_argument(
        "--fraction", type=float, default=None,
        help="dataset shrink factor (default: harness defaults)",
    )
    p.add_argument(
        "--only", default=None,
        help="comma-separated experiment ids (e.g. table1,fig5)",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="run the parallel-scaling benchmark on a tiny dataset and "
        "exit non-zero if any worker count breaks serial parity",
    )
    p.add_argument(
        "--e2e",
        action="store_true",
        help="measure end-to-end sites/sec with the throughput engine off "
        "vs on vs fused, sweep the multi-device pool over 1/2/4 devices "
        "with and without the CPU steal lane, sweep cohort sizes (see "
        "--samples), write BENCH_e2e.json, BENCH_multidev.json and "
        "BENCH_cohort.json to the output dir, and exit non-zero if any "
        "arm's results differ, fusion does not reduce kernel launches, "
        "multi-device throughput regresses below 1 device, or cohort "
        "batching fails its per-sample speedup / bounded-launch gates",
    )
    p.add_argument(
        "--samples", type=int, nargs="+", default=(1, 2, 4),
        metavar="S",
        help="cohort sizes for the --e2e cohort sweep (an S=1 baseline "
        "arm is always included; default: 1 2 4)",
    )
    args = p.parse_args(argv)

    if args.e2e:
        import json
        import os

        from .bench.harness import (
            exp_cohort,
            exp_e2e_throughput,
            exp_multidevice,
        )

        row = exp_e2e_throughput("ch1-sim", fraction=args.fraction)
        os.makedirs(args.out_dir, exist_ok=True)
        path = os.path.join(args.out_dir, "BENCH_e2e.json")
        with open(path, "w") as f:
            json.dump(row, f, indent=2, sort_keys=True)
            f.write("\n")
        print(
            f"{row['dataset']}: {row['n_windows']} windows, baseline "
            f"{row['baseline']['sites_per_sec']:.0f} sites/s -> optimized "
            f"{row['optimized']['sites_per_sec']:.0f} sites/s "
            f"({row['speedup']:.2f}x) -> fused "
            f"{row['fused']['sites_per_sec']:.0f} sites/s "
            f"({row['speedup_fused']:.2f}x, "
            f"{row['speedup_fused_vs_optimized']:.2f}x over optimized), "
            f"consistent={'yes' if row['consistent'] else 'NO'}"
        )
        print(
            f"kernel launches: {row['optimized']['launches']} unfused -> "
            f"{row['fused']['launches']} fused "
            f"({row['launch_reduction']:.1f}x fewer)"
        )
        print(f"wrote {path}")
        launches_down = (
            row["fused"]["launches"] < row["optimized"]["launches"]
        )

        multi = exp_multidevice("ch1-sim", fraction=args.fraction)
        mpath = os.path.join(args.out_dir, "BENCH_multidev.json")
        with open(mpath, "w") as f:
            json.dump(multi, f, indent=2, sort_keys=True)
            f.write("\n")
        for arm in multi["arms"]:
            lane = f"{arm['devices']}dev" + (
                "+cpu" if arm["cpu_steal"] else ""
            )
            print(
                f"{lane}: modeled={arm['modeled_seconds'] * 1e3:.2f}ms "
                f"({arm['speedup_vs_1dev']:.2f}x) "
                f"launches={arm['launches']} "
                f"transfers={arm['h2d_count'] + arm['d2h_count']} "
                f"steals={arm['steals']} "
                f"consistent={'yes' if arm['consistent'] else 'NO'}"
            )
        print(
            f"multi-device: {multi['max_devices']} devices "
            f"{multi['speedup_max_devices']:.2f}x over 1 device, "
            f"{multi['hetero_steals']} steals, "
            f"consistent={'yes' if multi['consistent'] else 'NO'}"
        )
        print(f"wrote {mpath}")
        multi_ok = (
            multi["consistent"] and multi["speedup_max_devices"] >= 1.0
        )

        cohort = exp_cohort(
            "ch1-sim", fraction=args.fraction,
            samples=tuple(args.samples),
        )
        cpath = os.path.join(args.out_dir, "BENCH_cohort.json")
        with open(cpath, "w") as f:
            json.dump(cohort, f, indent=2, sort_keys=True)
            f.write("\n")
        for arm in cohort["arms"]:
            print(
                f"S={arm['samples']}: per-sample "
                f"{arm['per_sample_sites_per_sec']:.0f} sites/s "
                f"({arm['speedup_per_sample']:.2f}x vs S=1) "
                f"launches={arm['launches']} "
                f"stage-ratio={arm['launch_stage_ratio_max']:.2f} "
                f"consistent={'yes' if arm['consistent'] else 'NO'}"
            )
        print(
            f"cohort: S={cohort['max_samples']} "
            f"{cohort['speedup_max_samples']:.2f}x per-sample over S=1, "
            f"stage launch ratio {cohort['launch_stage_ratio_max']:.2f} "
            f"(bound met: {'yes' if cohort['launches_stage_bounded'] else 'NO'}), "
            f"consistent={'yes' if cohort['consistent'] else 'NO'}"
        )
        print(f"wrote {cpath}")
        # The per-sample speedup gate only binds once there is real
        # batching to amortize (S >= 2 in the sweep).
        cohort_ok = cohort["consistent"] and cohort["launches_stage_bounded"]
        if cohort["max_samples"] >= 2:
            cohort_ok = cohort_ok and cohort["speedup_max_samples"] >= 1.5

        return 0 if (
            row["consistent"] and launches_down and multi_ok and cohort_ok
        ) else 1

    if args.smoke:
        from .bench.harness import exp_parallel_scaling

        rows = exp_parallel_scaling(
            "ch21-sim", fraction=0.1, workers=(1, 2, 4)
        )
        ok = True
        for w, row in rows.items():
            ok = ok and row["consistent"]
            print(
                f"workers={w}: wall={row['wall']:.3f}s "
                f"speedup={row['speedup']:.2f}x shards={row['shards']} "
                f"pool={row['pool']} "
                f"consistent={'yes' if row['consistent'] else 'NO'}"
            )
        print("parity:", "OK" if ok else "FAILED")
        return 0 if ok else 1

    from .bench.export import export_all

    kwargs = {}
    if args.only:
        kwargs["include"] = tuple(args.only.split(","))
    written = export_all(args.out_dir, fraction=args.fraction, **kwargs)
    for path in written:
        print(f"wrote {path}")
    return 0


def main_verify(argv=None) -> int:
    """Run the cross-engine consistency audit on a simulated dataset."""
    p = argparse.ArgumentParser(
        prog="gsnp-verify", description=main_verify.__doc__
    )
    p.add_argument("--sites", type=int, default=10_000)
    p.add_argument("--depth", type=float, default=10.0)
    p.add_argument("--coverage", type=float, default=0.9)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--windows", default="1000,4096",
        help="comma-separated window sizes to check invariance over",
    )
    args = p.parse_args(argv)

    from .validate import verify_engines

    ds = generate_dataset(
        DatasetSpec(
            name="chrVerify", n_sites=args.sites, depth=args.depth,
            coverage=args.coverage, seed=args.seed,
        )
    )
    windows = tuple(int(w) for w in args.windows.split(","))
    report = verify_engines(ds, window_sizes=windows)
    print(report.summary())
    return 0 if report.passed else 1


def main_chaos(argv=None) -> int:
    """Run the pipeline under a deterministic fault schedule and assert
    bitwise output parity (crash + truncated record + allocation failure,
    then kill-mid-stream + resume, then the quarantine rung)."""
    p = argparse.ArgumentParser(
        prog="gsnp-chaos", description=main_chaos.__doc__
    )
    p.add_argument(
        "--seeds", default="0",
        help="comma-separated fault-schedule seeds (one full cycle each)",
    )
    p.add_argument("--engine", choices=engine_names(), default="gsnp")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--timeout-demo",
        action="store_true",
        help="also inject a stalled shard and recover it via "
        "--shard-timeout deadline enforcement",
    )
    p.add_argument(
        "--keep-dir", default=None,
        help="run in this directory and keep the artifacts (default: "
        "a temporary directory, removed afterwards)",
    )
    args = p.parse_args(argv)

    from .faults.chaos import format_report, run_chaos

    ok = True
    for seed in (int(s) for s in args.seeds.split(",")):
        report = run_chaos(
            seed,
            engine=args.engine,
            workers=args.workers,
            timeout_demo=args.timeout_demo,
            keep_dir=args.keep_dir,
        )
        print(format_report(report))
        ok = ok and report["ok"]
    print("chaos:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _add_analyzer_args(p: argparse.ArgumentParser) -> None:
    """Arguments shared by gsnp-lint and gsnp-audit."""
    p.add_argument(
        "paths", nargs="+", help="python files or directories to check"
    )
    p.add_argument(
        "--select", default=None,
        help="comma-separated rule ids/names to check (default: all)",
    )
    p.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids/names to skip",
    )
    p.add_argument(
        "--format", default="text", choices=("text", "json", "github"),
        dest="fmt",
        help="output format: text (default), json, or github "
        "(per-line CI annotations)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )


def main_lint(argv=None) -> int:
    """Statically check kernel code for SIMT-discipline violations."""
    p = argparse.ArgumentParser(
        prog="gsnp-lint", description=main_lint.__doc__
    )
    _add_analyzer_args(p)
    p.add_argument(
        "--require-rationale", action="store_true",
        help="fire GSNP109 on suppression comments with no nearby "
        "rationale comment",
    )
    args = p.parse_args(argv)

    from .analyze import RULES, lint_paths
    from .analyze.report import render_diagnostics

    if args.list_rules:
        for rid, rname in RULES.items():
            print(f"{rid}  {rname}")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        diags = lint_paths(
            args.paths, select=select, ignore=ignore,
            require_rationale=args.require_rationale,
        )
    except ValueError as exc:
        p.error(str(exc))
    out = render_diagnostics(diags, args.fmt, tool="gsnp-lint")
    if out:
        print(out)
    if diags:
        print(f"{len(diags)} problem(s) found", file=sys.stderr)
    return 1 if diags else 0


def main_audit(argv=None) -> int:
    """Prove coalescing, race-freedom and barrier discipline statically.

    Extracts a per-kernel IR, classifies every routed memory op on the
    affine-in-tid lattice (GSNP201 notes), and reports provable races
    (GSNP202), static uninit reads (GSNP203), missing-barrier hazards
    (GSNP204) and unprovable indices (GSNP205).  ``--calibrate`` replays
    tier-1 kernels under the simulator and cross-checks every proven
    coalescing verdict against the runtime transaction counters.
    """
    p = argparse.ArgumentParser(
        prog="gsnp-audit", description=main_audit.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_analyzer_args(p)
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print per-op GSNP201 verdict notes (text format)",
    )
    p.add_argument(
        "--calibrate", action="store_true",
        help="replay tier-1 kernels and assert runtime transaction "
        "counters agree with every proven coalescing verdict",
    )
    p.add_argument(
        "--calibrate-sites", type=int, default=1500,
        help="dataset size for the calibration replay (default 1500)",
    )
    args = p.parse_args(argv)

    from .analyze import RULES
    from .analyze.dataflow import audit_paths
    from .analyze.report import render_diagnostics

    if args.list_rules:
        for rid, rname in RULES.items():
            if rid.startswith("GSNP2") or rid == "GSNP100":
                print(f"{rid}  {rname}")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        mods = audit_paths(args.paths, select=select, ignore=ignore)
    except ValueError as exc:
        p.error(str(exc))

    diags = [d for m in mods for d in m.diagnostics]
    errors = [d for d in diags if d.severity == "error"]
    verdicts = [v for m in mods for v in m.verdicts]
    counts: dict[str, int] = {}
    for v in verdicts:
        counts[v.verdict] = counts.get(v.verdict, 0) + 1
    kernels = sum(len(m.kernels) for m in mods)

    calibration = None
    if args.calibrate:
        from .analyze.calibrate import run_calibration

        calibration = run_calibration(
            args.paths, n_sites=args.calibrate_sites
        )

    shown = diags if (args.verbose or args.fmt != "text") else errors
    extra: dict[str, object] = {
        "kernels": kernels,
        "verdicts": counts,
        "ops": [v.to_dict() for v in verdicts],
    }
    if calibration is not None:
        extra["calibration"] = calibration.to_dict()
    out = render_diagnostics(shown, args.fmt, tool="gsnp-audit", extra=extra)
    if out:
        print(out)
    if args.fmt == "text":
        summary = ", ".join(
            f"{counts.get(k, 0)} {k}"
            for k in ("coalesced", "strided", "gather", "unproven")
        )
        print(
            f"audited {kernels} kernel(s), {len(verdicts)} memory op(s): "
            f"{summary}",
            file=sys.stderr,
        )
        if calibration is not None:
            print(calibration.summary(), file=sys.stderr)
    if errors:
        print(f"{len(errors)} problem(s) found", file=sys.stderr)
    ok = not errors and (calibration is None or calibration.ok)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_call())
