"""Command-line tools: simulate datasets, call SNPs, decompress results.

Three entry points mirror how the original system is operated:

* ``gsnp-simulate`` — generate a synthetic dataset (reference FASTA, SOAP
  alignment file, known-SNP prior file).
* ``gsnp-call`` — run SNP detection over those files with any engine
  (``gsnp``, ``gsnp_cpu`` or ``soapsnp``) and write text or compressed
  output.
* ``gsnp-decompress`` — the decompression tool of Section V-B: convert a
  compressed result back to SOAPsnp text, optionally filtered.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .align.records import AlignmentBatch
from .api import engine_names
from .compress.reader import CompressedResultReader
from .core.detector import GsnpDetector
from .formats.cns import write_cns
from .formats.fasta import write_fasta
from .formats.prior import write_prior
from .formats.soap import write_soap
from .seqsim.datasets import DatasetSpec, generate_dataset
from .soapsnp.posterior import is_snp_call


def main_simulate(argv=None) -> int:
    """Generate a synthetic dataset and write its three input files."""
    p = argparse.ArgumentParser(
        prog="gsnp-simulate", description=main_simulate.__doc__
    )
    p.add_argument("--name", default="chrSim")
    p.add_argument("--sites", type=int, default=50_000)
    p.add_argument("--depth", type=float, default=10.0)
    p.add_argument("--coverage", type=float, default=0.85)
    p.add_argument("--read-len", type=int, default=100)
    p.add_argument("--snp-rate", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prefix", default="simdata", help="output file prefix")
    args = p.parse_args(argv)

    spec = DatasetSpec(
        name=args.name,
        n_sites=args.sites,
        depth=args.depth,
        coverage=args.coverage,
        read_len=args.read_len,
        snp_rate=args.snp_rate,
        seed=args.seed,
    )
    ds = generate_dataset(spec)
    write_fasta(f"{args.prefix}.fa", [ds.reference])
    write_soap(f"{args.prefix}.soap", AlignmentBatch.from_read_set(ds.reads))
    write_prior(f"{args.prefix}.prior", ds.reference.name, ds.prior)
    np.savetxt(
        f"{args.prefix}.truth",
        np.column_stack(
            [ds.diploid.snp_positions + 1, ds.diploid.snp_genotypes]
        ),
        fmt="%d",
        header="pos allele1 allele2",
    )
    print(
        f"wrote {args.prefix}.fa / .soap / .prior / .truth "
        f"({ds.reads.n_reads} reads, {ds.diploid.n_snps} planted SNPs)"
    )
    return 0


def main_call(argv=None) -> int:
    """Run SNP detection over (fasta, soap, prior) input files."""
    p = argparse.ArgumentParser(prog="gsnp-call", description=main_call.__doc__)
    p.add_argument("fasta")
    p.add_argument("soap")
    p.add_argument("--prior", default=None)
    p.add_argument("--engine", choices=engine_names(), default="gsnp")
    p.add_argument("--window", type=int, default=256_000)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 runs the sharded parallel executor",
    )
    p.add_argument(
        "--shard-size", type=int, default=None,
        help="sites per shard (snapped up to a window multiple)",
    )
    p.add_argument("-o", "--output", default=None)
    p.add_argument(
        "--compressed",
        action="store_true",
        help="write GSNP compressed output instead of text",
    )
    p.add_argument("--min-quality", type=int, default=13)
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="run the simulated device with the kernel sanitizer enabled "
        "(races, hazards, uninitialized reads, leaks); serial engine only",
    )
    p.add_argument(
        "--prefetch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="double-buffered window streaming: decode window N+1 while "
        "window N computes (results are bitwise identical either way)",
    )
    p.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable persistent device residency (re-upload score tables "
        "on every run/shard instead of once per worker)",
    )
    p.add_argument(
        "--fusion",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="fused ragged-megabatch launching: concatenate windows into "
        "one launch plan so each kernel chain launches once per megabatch "
        "(gsnp engine only; results are bitwise identical either way)",
    )
    p.add_argument(
        "--shard-timeout", type=float, default=None,
        help="per-shard wall-clock deadline in seconds (process pools "
        "only); an expired shard is killed and retried with backoff",
    )
    p.add_argument(
        "--journal", default=None,
        help="shard journal directory: commit each completed shard so an "
        "interrupted run can be resumed",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already committed to --journal; the merged "
        "output is bitwise identical to an uninterrupted run",
    )
    p.add_argument(
        "--quarantine", default=None,
        help="append malformed input records (with file:line context) to "
        "this file and continue, instead of failing the run",
    )
    args = p.parse_args(argv)

    if args.resume and not args.journal:
        p.error("--resume requires --journal")
    if (
        (args.journal or args.shard_timeout) and args.workers == 1
        and args.shard_size is None
    ):
        # Journalling and deadlines live in the sharded executor; give a
        # serial invocation enough shards to checkpoint between.
        args.shard_size = args.window

    det = GsnpDetector.from_files(
        args.fasta,
        args.soap,
        args.prior,
        engine=args.engine,
        window_size=args.window,
        workers=args.workers,
        shard_size=args.shard_size,
        min_quality=args.min_quality,
        sanitize=args.sanitize,
        prefetch=args.prefetch,
        cache=args.cache,
        fusion=args.fusion,
        shard_timeout=args.shard_timeout,
        journal_dir=args.journal,
        resume=args.resume,
        quarantine=args.quarantine,
    )
    t0 = time.perf_counter()
    result = det.run()
    dt = time.perf_counter() - t0

    table = result.table
    if args.output:
        if args.compressed:
            if args.engine == "soapsnp":
                from .compress.columnar import encode_table

                blob = encode_table(table)
            else:
                blob = result.compressed_output
            with open(args.output, "wb") as f:
                f.write(blob)
        else:
            write_cns(args.output, table)
    snps = is_snp_call(table) & (table.quality >= args.min_quality)
    print(
        f"{args.engine}: {table.n_sites} sites, {int(snps.sum())} SNP calls "
        f"(q>={args.min_quality}) in {dt:.2f}s"
        + (f" -> {args.output}" if args.output else "")
    )
    return 0


def main_decompress(argv=None) -> int:
    """Decompress a GSNP result file back to SOAPsnp text."""
    p = argparse.ArgumentParser(
        prog="gsnp-decompress", description=main_decompress.__doc__
    )
    p.add_argument("input")
    p.add_argument("-o", "--output", default=None, help="default: stdout")
    p.add_argument("--snps-only", action="store_true")
    p.add_argument(
        "--range",
        default=None,
        help="1-based position range LO:HI (half-open)",
    )
    args = p.parse_args(argv)

    reader = CompressedResultReader(args.input)
    if args.range:
        lo, hi = (int(x) for x in args.range.split(":"))
        table = reader.query_range(lo, hi)
    elif args.snps_only:
        table = reader.query_snps()
    else:
        table = reader.read_all()
    if args.output:
        nbytes = write_cns(args.output, table)
        print(f"wrote {table.n_sites} rows ({nbytes} bytes) to {args.output}")
    else:
        from .formats.cns import format_rows

        sys.stdout.write(format_rows(table).decode())
    return 0


def main_bench(argv=None) -> int:
    """Regenerate the paper's tables/figures as CSV files."""
    p = argparse.ArgumentParser(
        prog="gsnp-bench", description=main_bench.__doc__
    )
    p.add_argument("-o", "--out-dir", default="results")
    p.add_argument(
        "--fraction", type=float, default=None,
        help="dataset shrink factor (default: harness defaults)",
    )
    p.add_argument(
        "--only", default=None,
        help="comma-separated experiment ids (e.g. table1,fig5)",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="run the parallel-scaling benchmark on a tiny dataset and "
        "exit non-zero if any worker count breaks serial parity",
    )
    p.add_argument(
        "--e2e",
        action="store_true",
        help="measure end-to-end sites/sec with the throughput engine off "
        "vs on vs fused, write BENCH_e2e.json to the output dir, and exit "
        "non-zero if any arm's results differ or fusion does not reduce "
        "kernel launches",
    )
    args = p.parse_args(argv)

    if args.e2e:
        import json
        import os

        from .bench.harness import exp_e2e_throughput

        row = exp_e2e_throughput("ch1-sim", fraction=args.fraction)
        os.makedirs(args.out_dir, exist_ok=True)
        path = os.path.join(args.out_dir, "BENCH_e2e.json")
        with open(path, "w") as f:
            json.dump(row, f, indent=2, sort_keys=True)
            f.write("\n")
        print(
            f"{row['dataset']}: {row['n_windows']} windows, baseline "
            f"{row['baseline']['sites_per_sec']:.0f} sites/s -> optimized "
            f"{row['optimized']['sites_per_sec']:.0f} sites/s "
            f"({row['speedup']:.2f}x) -> fused "
            f"{row['fused']['sites_per_sec']:.0f} sites/s "
            f"({row['speedup_fused']:.2f}x, "
            f"{row['speedup_fused_vs_optimized']:.2f}x over optimized), "
            f"consistent={'yes' if row['consistent'] else 'NO'}"
        )
        print(
            f"kernel launches: {row['optimized']['launches']} unfused -> "
            f"{row['fused']['launches']} fused "
            f"({row['launch_reduction']:.1f}x fewer)"
        )
        print(f"wrote {path}")
        launches_down = (
            row["fused"]["launches"] < row["optimized"]["launches"]
        )
        return 0 if (row["consistent"] and launches_down) else 1

    if args.smoke:
        from .bench.harness import exp_parallel_scaling

        rows = exp_parallel_scaling(
            "ch21-sim", fraction=0.1, workers=(1, 2, 4)
        )
        ok = True
        for w, row in rows.items():
            ok = ok and row["consistent"]
            print(
                f"workers={w}: wall={row['wall']:.3f}s "
                f"speedup={row['speedup']:.2f}x shards={row['shards']} "
                f"pool={row['pool']} "
                f"consistent={'yes' if row['consistent'] else 'NO'}"
            )
        print("parity:", "OK" if ok else "FAILED")
        return 0 if ok else 1

    from .bench.export import export_all

    kwargs = {}
    if args.only:
        kwargs["include"] = tuple(args.only.split(","))
    written = export_all(args.out_dir, fraction=args.fraction, **kwargs)
    for path in written:
        print(f"wrote {path}")
    return 0


def main_verify(argv=None) -> int:
    """Run the cross-engine consistency audit on a simulated dataset."""
    p = argparse.ArgumentParser(
        prog="gsnp-verify", description=main_verify.__doc__
    )
    p.add_argument("--sites", type=int, default=10_000)
    p.add_argument("--depth", type=float, default=10.0)
    p.add_argument("--coverage", type=float, default=0.9)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--windows", default="1000,4096",
        help="comma-separated window sizes to check invariance over",
    )
    args = p.parse_args(argv)

    from .validate import verify_engines

    ds = generate_dataset(
        DatasetSpec(
            name="chrVerify", n_sites=args.sites, depth=args.depth,
            coverage=args.coverage, seed=args.seed,
        )
    )
    windows = tuple(int(w) for w in args.windows.split(","))
    report = verify_engines(ds, window_sizes=windows)
    print(report.summary())
    return 0 if report.passed else 1


def main_chaos(argv=None) -> int:
    """Run the pipeline under a deterministic fault schedule and assert
    bitwise output parity (crash + truncated record + allocation failure,
    then kill-mid-stream + resume, then the quarantine rung)."""
    p = argparse.ArgumentParser(
        prog="gsnp-chaos", description=main_chaos.__doc__
    )
    p.add_argument(
        "--seeds", default="0",
        help="comma-separated fault-schedule seeds (one full cycle each)",
    )
    p.add_argument("--engine", choices=engine_names(), default="gsnp")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--timeout-demo",
        action="store_true",
        help="also inject a stalled shard and recover it via "
        "--shard-timeout deadline enforcement",
    )
    p.add_argument(
        "--keep-dir", default=None,
        help="run in this directory and keep the artifacts (default: "
        "a temporary directory, removed afterwards)",
    )
    args = p.parse_args(argv)

    from .faults.chaos import format_report, run_chaos

    ok = True
    for seed in (int(s) for s in args.seeds.split(",")):
        report = run_chaos(
            seed,
            engine=args.engine,
            workers=args.workers,
            timeout_demo=args.timeout_demo,
            keep_dir=args.keep_dir,
        )
        print(format_report(report))
        ok = ok and report["ok"]
    print("chaos:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def main_lint(argv=None) -> int:
    """Statically check kernel code for SIMT-discipline violations."""
    p = argparse.ArgumentParser(
        prog="gsnp-lint", description=main_lint.__doc__
    )
    p.add_argument(
        "paths", nargs="+", help="python files or directories to lint"
    )
    p.add_argument(
        "--select", default=None,
        help="comma-separated rule ids/names to check (default: all)",
    )
    p.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids/names to skip",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    args = p.parse_args(argv)

    from .analyze import RULES, lint_paths

    if args.list_rules:
        for rid, rname in RULES.items():
            print(f"{rid}  {rname}")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        diags = lint_paths(args.paths, select=select, ignore=ignore)
    except ValueError as exc:
        p.error(str(exc))
    for d in diags:
        print(d.format())
    if diags:
        print(f"{len(diags)} problem(s) found", file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_call())
