"""Diploid individual simulation: planting SNPs into a reference.

SNP detection compares a resequenced *individual* against the reference, so
the simulator derives a diploid genotype (two haplotypes) from the
reference by planting single-nucleotide variants:

* a fraction ``snp_rate`` of sites become SNPs (human-scale ~1e-3),
* ``het_fraction`` of those are heterozygous (ref/alt), the rest
  homozygous alt,
* alternative alleles prefer transitions over transversions with ratio
  ``titv`` (the empirical ~2-4x bias the posterior priors also encode).

The planted truth is kept so tests and benchmarks can score calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import N_BASES
from .reference import Reference

#: For each reference base code, its transition partner (A<->G, C<->T).
_TRANSITION = np.array([2, 3, 0, 1], dtype=np.uint8)


@dataclass(frozen=True)
class Diploid:
    """A simulated individual: two haplotypes plus planted-SNP truth."""

    reference: Reference
    hap1: np.ndarray  # uint8 base codes
    hap2: np.ndarray
    snp_positions: np.ndarray  # int64, sorted
    #: Genotype at each SNP position as (allele1, allele2), allele1<=allele2.
    snp_genotypes: np.ndarray  # (n_snps, 2) uint8

    @property
    def n_snps(self) -> int:
        return int(self.snp_positions.size)

    def genotype_at(self, pos: int) -> tuple[int, int]:
        """True unordered genotype at a position (ref/ref if not a SNP)."""
        i = np.searchsorted(self.snp_positions, pos)
        if i < self.n_snps and self.snp_positions[i] == pos:
            g = self.snp_genotypes[i]
            return int(g[0]), int(g[1])
        r = int(self.reference.codes[pos])
        return r, r


def simulate_diploid(
    reference: Reference,
    snp_rate: float = 1e-3,
    het_fraction: float = 0.6,
    titv: float = 4.0,
    seed: int = 1,
) -> Diploid:
    """Plant SNPs into a reference and return the diploid individual."""
    if not 0.0 <= snp_rate < 1.0:
        raise ValueError("snp_rate must be in [0, 1)")
    if not 0.0 <= het_fraction <= 1.0:
        raise ValueError("het_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    length = reference.length
    n_snps = int(round(length * snp_rate))
    positions = np.sort(
        rng.choice(length, size=min(n_snps, length), replace=False)
    ).astype(np.int64)
    ref_codes = reference.codes[positions]

    # Pick alternative alleles: transition with prob titv/(titv+2) (two
    # transversion choices share the rest).
    p_ti = titv / (titv + 2.0)
    u = rng.random(positions.size)
    alt = np.empty(positions.size, dtype=np.uint8)
    ti = u < p_ti
    alt[ti] = _TRANSITION[ref_codes[ti]]
    # Transversions: pick one of the two non-ref, non-transition bases.
    tv = ~ti
    choice = rng.integers(0, 2, size=int(tv.sum()))
    tv_idx = np.nonzero(tv)[0]
    for j, site in enumerate(tv_idx):
        r = ref_codes[site]
        options = [b for b in range(N_BASES) if b != r and b != _TRANSITION[r]]
        alt[site] = options[choice[j]]

    is_het = rng.random(positions.size) < het_fraction
    hap1 = reference.codes.copy()
    hap2 = reference.codes.copy()
    # Homozygous alt: both haplotypes carry alt.  Heterozygous: alt goes to
    # a random haplotype.
    hom = ~is_het
    hap1[positions[hom]] = alt[hom]
    hap2[positions[hom]] = alt[hom]
    het_pos = positions[is_het]
    het_alt = alt[is_het]
    to_h1 = rng.random(het_pos.size) < 0.5
    hap1[het_pos[to_h1]] = het_alt[to_h1]
    hap2[het_pos[~to_h1]] = het_alt[~to_h1]

    genos = np.empty((positions.size, 2), dtype=np.uint8)
    a = np.where(is_het, ref_codes, alt)
    b = alt
    genos[:, 0] = np.minimum(a, b)
    genos[:, 1] = np.maximum(a, b)
    return Diploid(reference, hap1, hap2, positions, genos)
