"""Evaluation datasets: scaled replicas of the paper's Table II.

The paper uses BGI's whole-human-genome resequencing data (247 M sites for
chromosome 1).  A pure-Python reproduction cannot process 10^8 sites per
experiment, so every dataset here is a 1/1000-scale replica that preserves
the quantities the algorithms are sensitive to — sequencing depth, coverage
ratio, read length, quality profile, and hence the ``base_occ`` sparsity
regime of Figure 4(b).  Cost-model event counts scale linearly in sites, so
full-scale modeled times are ``scaled counts x 1000``
(:mod:`repro.bench.scale`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .diploid import Diploid, simulate_diploid
from .quality import QualityModel
from .reads import ReadSet, simulate_reads
from .reference import Reference, synthesize_reference

#: Linear scale factor between simulated datasets and the paper's.
DEFAULT_SCALE = 1000


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of one simulated dataset."""

    name: str
    n_sites: int
    depth: float
    coverage: float
    read_len: int = 100
    snp_rate: float = 1e-3
    het_fraction: float = 0.6
    known_fraction: float = 0.8
    multihit_fraction: float = 0.05
    seed: int = 0
    #: Factor relating this dataset to the paper's full-scale original.
    scale_factor: float = DEFAULT_SCALE


@dataclass(frozen=True)
class KnownSnpPrior:
    """The third input file: per-site prior rates for known SNPs."""

    positions: np.ndarray  # int64, sorted
    rates: np.ndarray  # float64, prior SNP probability per listed site

    @property
    def n_sites(self) -> int:
        return int(self.positions.size)

    def rate_at(self, positions: np.ndarray, novel_rate: float) -> np.ndarray:
        """Prior SNP rate for each queried position (vectorized)."""
        out = np.full(np.asarray(positions).shape, novel_rate, dtype=np.float64)
        if self.n_sites == 0:
            return out
        idx = np.searchsorted(self.positions, positions)
        idx_c = np.minimum(idx, self.n_sites - 1)
        hit = (idx < self.n_sites) & (self.positions[idx_c] == positions)
        out[hit] = self.rates[idx_c[hit]]
        return out


@dataclass
class SimulatedDataset:
    """Everything one SNP-calling run needs, plus ground truth."""

    spec: DatasetSpec
    reference: Reference
    diploid: Diploid
    reads: ReadSet
    prior: KnownSnpPrior

    @property
    def n_sites(self) -> int:
        return self.reference.length


# --- Table II replicas -------------------------------------------------------

#: Chromosome 1: the largest sequence (247 M sites, 11X, 88% coverage).
CH1_SPEC = DatasetSpec(
    name="ch1-sim", n_sites=247_000, depth=11.0, coverage=0.88, seed=11
)

#: Chromosome 21: the smallest sequence (47 M sites, 9.6X, 68% coverage).
CH21_SPEC = DatasetSpec(
    name="ch21-sim", n_sites=47_000, depth=9.6, coverage=0.68, seed=21
)

#: Paper's full-scale Table II, for side-by-side benchmark reporting.
TABLE2_FULL = {
    "ch1-sim": {
        "sites": 247e6,
        "depth": 11.0,
        "reads": 44e6,
        "coverage": 0.88,
        "input_gb": 12.0,
        "output_gb": 17.0,
    },
    "ch21-sim": {
        "sites": 47e6,
        "depth": 9.6,
        "reads": 6e6,
        "coverage": 0.68,
        "input_gb": 2.0,
        "output_gb": 3.0,
    },
}

#: Approximate hg18 chromosome lengths in Mbp, used for the 24-sequence
#: whole-genome workload of Figure 12 (scaled to k-sites).
HG_CHROM_MBP = {
    "chr1": 247, "chr2": 243, "chr3": 199, "chr4": 191, "chr5": 181,
    "chr6": 171, "chr7": 159, "chr8": 146, "chr9": 140, "chr10": 135,
    "chr11": 134, "chr12": 132, "chr13": 114, "chr14": 106, "chr15": 100,
    "chr16": 89, "chr17": 79, "chr18": 76, "chr19": 63, "chr20": 62,
    "chr21": 47, "chr22": 50, "chrX": 155, "chrY": 58,
}


def whole_genome_specs(
    depth: float = 11.0, coverage: float = 0.85
) -> list[DatasetSpec]:
    """Dataset specs for all 24 sequences of the Figure 12 workload."""
    specs = []
    for i, (name, mbp) in enumerate(HG_CHROM_MBP.items()):
        d = depth if name != "chrY" else depth / 2.0
        specs.append(
            DatasetSpec(
                name=f"{name}-sim",
                n_sites=mbp * 1000,
                depth=d,
                coverage=coverage,
                seed=100 + i,
            )
        )
    return specs


def _make_prior(
    diploid: Diploid, known_fraction: float, rng: np.random.Generator
) -> KnownSnpPrior:
    """Build the known-SNP prior file: most planted SNPs plus decoys.

    Real dbSNP contains both true polymorphisms of this individual and
    sites where this individual is homozygous reference; we include one
    decoy per two known SNPs to exercise that path.
    """
    snp_pos = diploid.snp_positions
    n_known = int(round(snp_pos.size * known_fraction))
    known = rng.choice(snp_pos, size=n_known, replace=False) if n_known else (
        np.empty(0, dtype=np.int64)
    )
    n_decoys = n_known // 2
    length = diploid.reference.length
    decoys = rng.choice(length, size=min(n_decoys, length), replace=False)
    decoys = np.setdiff1d(decoys, snp_pos)
    positions = np.sort(np.unique(np.concatenate([known, decoys]))).astype(
        np.int64
    )
    # Allele-frequency-derived prior rates: common SNPs get ~0.1-0.5.
    rates = np.clip(rng.beta(2.0, 8.0, positions.size), 0.01, 0.5)
    return KnownSnpPrior(positions=positions, rates=rates)


def generate_dataset(
    spec: DatasetSpec, quality: QualityModel | None = None
) -> SimulatedDataset:
    """Generate reference, individual, reads and prior for a spec."""
    rng = np.random.default_rng(spec.seed)
    reference = synthesize_reference(
        spec.name, spec.n_sites, seed=spec.seed * 7 + 1
    )
    diploid = simulate_diploid(
        reference,
        snp_rate=spec.snp_rate,
        het_fraction=spec.het_fraction,
        seed=spec.seed * 7 + 2,
    )
    reads = simulate_reads(
        diploid,
        depth=spec.depth,
        coverage=spec.coverage,
        read_len=spec.read_len,
        quality=quality,
        multihit_fraction=spec.multihit_fraction,
        seed=spec.seed * 7 + 3,
    )
    prior = _make_prior(diploid, spec.known_fraction, rng)
    return SimulatedDataset(
        spec=spec, reference=reference, diploid=diploid, reads=reads,
        prior=prior,
    )


def dataset_summary(ds: SimulatedDataset) -> dict[str, float]:
    """Table-II-style characteristics of a generated dataset."""
    covered = np.zeros(ds.n_sites, dtype=bool)
    idx = ds.reads.pos[:, None] + np.arange(ds.reads.read_len)[None, :]
    covered[idx.ravel()] = True
    return {
        "sites": float(ds.n_sites),
        "depth": ds.reads.n_reads * ds.reads.read_len / ds.n_sites,
        "reads": float(ds.reads.n_reads),
        "coverage": float(covered.mean()),
        "snps_planted": float(ds.diploid.n_snps),
        "known_prior_sites": float(ds.prior.n_sites),
    }
