"""Per-cycle sequencing-quality model.

Second-generation (Illumina-style) quality degrades along the read: early
cycles call at Phred ~38, late cycles drift down toward ~22, with per-base
noise.  The model here produces integer Phred scores in [min_q, max_q]
(max_q < 64 so scores fit the 6-bit field of ``base_word``), and the
corresponding error probabilities drive the read simulator's substitution
errors — giving the ~2% aggregate error rate the paper quotes for second
generation data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QualityModel:
    """Linear per-cycle decay with Gaussian noise."""

    q_start: float = 35.0
    q_end: float = 15.0
    noise_sd: float = 3.0
    min_q: int = 2
    max_q: int = 40

    def __post_init__(self) -> None:
        if not 0 <= self.min_q <= self.max_q < 64:
            raise ValueError("quality range must satisfy 0<=min<=max<64")

    def cycle_means(self, read_len: int) -> np.ndarray:
        """Mean Phred score per machine cycle."""
        if read_len <= 0:
            raise ValueError("read_len must be positive")
        if read_len == 1:
            return np.array([self.q_start])
        return np.linspace(self.q_start, self.q_end, read_len)

    #: Consecutive cycles sharing one noise draw.  Illumina base callers
    #: emit *binned* qualities that plateau for stretches of a read — the
    #: property Section V-B's RLE level exploits ("bases on a short read
    #: usually have the same sequencing quality").
    bin_cycles: int = 8
    #: Quality quantization step (binned Q-scores).
    quant: int = 3

    def sample(
        self, n_reads: int, read_len: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample integer quality scores of shape (n_reads, read_len).

        Noise is drawn per ``bin_cycles`` segment and scores are quantized
        to multiples of ``quant``, producing the plateau runs real binned
        Illumina qualities show.
        """
        means = self.cycle_means(read_len)
        n_segs = -(-read_len // self.bin_cycles)
        seg_noise = rng.normal(0.0, self.noise_sd, (n_reads, n_segs))
        noise = np.repeat(seg_noise, self.bin_cycles, axis=1)[:, :read_len]
        q = means[None, :] + noise
        q = np.rint(q / self.quant) * self.quant
        return np.clip(q, self.min_q, self.max_q).astype(np.uint8)

    def expected_error_rate(self, read_len: int) -> float:
        """Mean substitution-error probability over a read (diagnostic)."""
        means = self.cycle_means(read_len)
        return float(np.mean(np.power(10.0, -means / 10.0)))
