"""Short-read simulation with errors, strands and multi-hit reads.

Produces alignment-ready reads (the output of the upstream alignment stage
SOAPsnp consumes): every read knows its matched reference position, strand,
and hit count.  Bases and qualities are stored in *forward reference
orientation* (as SOAP alignment files do); the machine cycle of forward
position ``j`` on a reverse-strand read is ``read_len - 1 - j``, which is
what the ``coord`` dimension of ``base_occ``/``base_word`` records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import COMPLEMENT_CODE
from .diploid import Diploid
from .quality import QualityModel


@dataclass
class ReadSet:
    """A set of aligned reads over one reference sequence."""

    chrom: str
    read_len: int
    pos: np.ndarray  # int64 (n,), 0-based leftmost match position, sorted
    strand: np.ndarray  # uint8 (n,), 0=forward 1=reverse
    hits: np.ndarray  # uint8 (n,), number of alignment hits (1 = unique)
    bases: np.ndarray  # uint8 (n, read_len), forward orientation
    quals: np.ndarray  # uint8 (n, read_len), forward orientation

    @property
    def n_reads(self) -> int:
        return int(self.pos.size)

    def validate(self) -> None:
        """Raise ValueError on any internal inconsistency."""
        n = self.n_reads
        for name in ("strand", "hits"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} shape mismatch")
        for name in ("bases", "quals"):
            if getattr(self, name).shape != (n, self.read_len):
                raise ValueError(f"{name} shape mismatch")
        if n and np.any(np.diff(self.pos) < 0):
            raise ValueError("reads must be sorted by position")
        if np.any(self.bases >= 4):
            raise ValueError("base codes must be in 0..3")
        if np.any(self.quals >= 64):
            raise ValueError("quality scores must fit 6 bits")

    def machine_cycle(self) -> np.ndarray:
        """Machine cycle of each (read, forward-offset) pair."""
        j = np.arange(self.read_len)
        return np.where(
            self.strand[:, None] == 0, j[None, :], self.read_len - 1 - j[None, :]
        )


def covered_blocks(
    length: int,
    coverage: float,
    block_size: int,
    read_len: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick non-overlapping covered blocks totaling ~coverage of the genome.

    Returns ``(k, 2)`` start/end pairs (ends exclusive).  Reads are sampled
    only within blocks, producing the partial coverage of Table II (reads
    are "randomly sampled [so] the original sequence may not be completely
    covered").
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if coverage == 1.0:
        return np.array([[0, length]], dtype=np.int64)
    # Keep at least ~25 blocks so the covered fraction is achievable to a
    # few percent even on small (test-scale) genomes.
    block_size = max(min(block_size, length // 25), 2 * read_len)
    n_blocks_total = max(1, length // block_size)
    n_covered = max(1, int(round(n_blocks_total * coverage)))
    chosen = np.sort(rng.choice(n_blocks_total, n_covered, replace=False))
    starts = chosen.astype(np.int64) * block_size
    ends = np.minimum(starts + block_size, length)
    return np.stack([starts, ends], axis=1)


def simulate_reads(
    diploid: Diploid,
    depth: float,
    coverage: float = 1.0,
    read_len: int = 100,
    quality: QualityModel | None = None,
    multihit_fraction: float = 0.05,
    block_size: int = 2000,
    seed: int = 2,
) -> ReadSet:
    """Simulate a position-sorted read set at the given sequencing depth.

    ``depth`` is total read bases / reference length (the paper's
    definition), so the *covered-region* depth is ``depth / coverage``.
    """
    if quality is None:
        quality = QualityModel()
    ref = diploid.reference
    length = ref.length
    if read_len > length:
        raise ValueError("read_len exceeds reference length")
    rng = np.random.default_rng(seed)
    n_reads = int(round(depth * length / read_len))

    blocks = covered_blocks(length, coverage, block_size, read_len, rng)
    span = np.maximum(blocks[:, 1] - blocks[:, 0] - read_len, 0)
    usable = span > 0
    blocks, span = blocks[usable], span[usable]
    if blocks.shape[0] == 0:
        raise ValueError("coverage blocks too small for the read length")
    cum = np.concatenate([[0], np.cumsum(span)])
    u = rng.integers(0, cum[-1], n_reads)
    b = np.searchsorted(cum, u, side="right") - 1
    pos = blocks[b, 0] + (u - cum[b])

    order = np.argsort(pos, kind="stable")
    pos = pos[order].astype(np.int64)

    strand = rng.integers(0, 2, n_reads).astype(np.uint8)
    hap_choice = rng.integers(0, 2, n_reads)
    idx = pos[:, None] + np.arange(read_len)[None, :]
    bases = np.where(
        hap_choice[:, None] == 0, diploid.hap1[idx], diploid.hap2[idx]
    ).astype(np.uint8)

    # Qualities are generated per machine cycle, then flipped into forward
    # orientation for reverse-strand reads.
    q_machine = quality.sample(n_reads, read_len, rng)
    rev = strand == 1
    quals = q_machine.copy()
    quals[rev] = q_machine[rev][:, ::-1]

    # Substitution errors at the per-base Phred error probability.  The
    # machine errs on the strand it reads; a uniform wrong base on the
    # machine strand is also uniform after complementing back, so we can
    # apply errors directly in forward orientation.
    p_err = np.power(10.0, -quals.astype(np.float64) / 10.0)
    err = rng.random((n_reads, read_len)) < p_err
    shift = rng.integers(1, 4, size=int(err.sum())).astype(np.uint8)
    bases[err] = (bases[err] + shift) % 4

    hits = np.ones(n_reads, dtype=np.uint8)
    multi = rng.random(n_reads) < multihit_fraction
    hits[multi] = rng.integers(2, 10, size=int(multi.sum()))

    rs = ReadSet(
        chrom=ref.name,
        read_len=read_len,
        pos=pos,
        strand=strand,
        hits=hits,
        bases=bases,
        quals=quals,
    )
    rs.validate()
    return rs


def reverse_complement_view(read_set: ReadSet, i: int) -> tuple[np.ndarray, np.ndarray]:
    """Bases/quals of read ``i`` as the machine actually read them.

    Forward reads return the stored arrays; reverse reads return the
    reverse complement with reversed qualities (useful for writing FASTQ
    or SOAP alignment text).
    """
    b = read_set.bases[i]
    q = read_set.quals[i]
    if read_set.strand[i] == 0:
        return b.copy(), q.copy()
    return COMPLEMENT_CODE[b[::-1]].copy(), q[::-1].copy()
