"""Synthetic reference sequence generation.

The paper evaluates on the human reference; offline we synthesize reference
sequences with controllable length, GC content and seed.  Sequences are
stored as ``uint8`` base codes (A=0, C=1, G=2, T=3) — the same encoding the
rest of the package uses everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import BASES


@dataclass(frozen=True)
class Reference:
    """A named reference sequence of base codes."""

    name: str
    codes: np.ndarray  # uint8, values 0..3

    @property
    def length(self) -> int:
        return int(self.codes.size)

    def to_string(self) -> str:
        """Decode to an ACGT string (small references only)."""
        lut = np.frombuffer(BASES.encode(), dtype=np.uint8)
        return lut[self.codes].tobytes().decode()

    @staticmethod
    def from_string(name: str, seq: str) -> "Reference":
        """Parse an ACGT string (raises on other characters)."""
        raw = np.frombuffer(seq.upper().encode(), dtype=np.uint8)
        codes = np.full(raw.size, 255, dtype=np.uint8)
        for i, b in enumerate(BASES):
            codes[raw == ord(b)] = i
        if (codes == 255).any():
            bad = chr(int(raw[codes == 255][0]))
            raise ValueError(f"invalid base {bad!r} in reference {name!r}")
        return Reference(name, codes)


def synthesize_reference(
    name: str,
    length: int,
    gc_content: float = 0.41,
    seed: int = 0,
) -> Reference:
    """Generate a random reference with the given GC fraction.

    Human genomic GC content is ~41%, the default here.  The generator is
    a PCG64 stream keyed by ``seed`` so datasets are reproducible.
    """
    if length <= 0:
        raise ValueError("reference length must be positive")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be in [0, 1]")
    rng = np.random.default_rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(
        4, size=length, p=[at, gc, gc, at]
    ).astype(np.uint8)
    return Reference(name, codes)
