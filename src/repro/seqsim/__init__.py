"""Sequencing simulation substrate: reference, diploid, reads, datasets."""

from .datasets import (
    CH1_SPEC,
    CH21_SPEC,
    DEFAULT_SCALE,
    HG_CHROM_MBP,
    TABLE2_FULL,
    DatasetSpec,
    KnownSnpPrior,
    SimulatedDataset,
    dataset_summary,
    generate_dataset,
    whole_genome_specs,
)
from .diploid import Diploid, simulate_diploid
from .quality import QualityModel
from .reads import ReadSet, covered_blocks, reverse_complement_view, simulate_reads
from .reference import Reference, synthesize_reference

__all__ = [
    "CH1_SPEC",
    "CH21_SPEC",
    "DEFAULT_SCALE",
    "DatasetSpec",
    "Diploid",
    "HG_CHROM_MBP",
    "KnownSnpPrior",
    "QualityModel",
    "ReadSet",
    "Reference",
    "SimulatedDataset",
    "TABLE2_FULL",
    "covered_blocks",
    "dataset_summary",
    "generate_dataset",
    "reverse_complement_view",
    "simulate_diploid",
    "simulate_reads",
    "synthesize_reference",
    "whole_genome_specs",
]
