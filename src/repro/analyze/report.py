"""Shared diagnostic output formats for ``gsnp-lint`` and ``gsnp-audit``.

Three formats, selected with ``--format``:

``text``
    the classic ``path:line:col: RULE [name] message`` lines;
``json``
    one machine-readable document (``{"tool", "diagnostics", "count"}``
    plus tool-specific extras) for dashboards and scripted gates;
``github``
    GitHub Actions workflow commands (``::error file=...,line=...``) so
    CI failures render as per-line annotations on the PR diff instead of
    a wall of log text.  Severity ``note`` maps to ``::notice``.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .lint import RULES, Diagnostic

FORMATS: tuple[str, ...] = ("text", "json", "github")


def _github_line(diag: Diagnostic) -> str:
    level = "error" if diag.severity == "error" else "notice"
    name = RULES.get(diag.rule, "?")
    # Workflow-command property values must escape their separators.
    message = (
        diag.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::{level} file={diag.path},line={diag.line},col={diag.col},"
        f"title={diag.rule} [{name}]::{message}"
    )


def render_diagnostics(
    diags: Sequence[Diagnostic],
    fmt: str = "text",
    tool: str = "gsnp-lint",
    extra: Optional[dict[str, object]] = None,
) -> str:
    """Render diagnostics in the requested format (one printable blob).

    ``extra`` is merged into the JSON document (e.g. the audit's verdict
    summary or calibration report); other formats ignore it.
    """
    if fmt == "json":
        doc: dict[str, object] = {
            "tool": tool,
            "diagnostics": [d.to_dict() for d in diags],
            "count": sum(1 for d in diags if d.severity == "error"),
        }
        if extra:
            doc.update(extra)
        return json.dumps(doc, indent=2, sort_keys=True)
    if fmt == "github":
        return "\n".join(_github_line(d) for d in diags)
    if fmt == "text":
        return "\n".join(d.format() for d in diags)
    raise ValueError(
        f"unknown format {fmt!r}; valid formats: {', '.join(FORMATS)}"
    )


__all__ = ["FORMATS", "render_diagnostics"]
