"""Runtime calibration of the static coalescing verdicts.

``gsnp-audit --calibrate`` is the soundness test that keeps the static
analyzer honest: it installs a per-op observer on the simulator
(:func:`repro.gpusim.kernel.set_op_observer`), replays the tier-1 kernel
surface — the GSNP pipeline in its optimized and fused configurations
plus direct micro-probes of every device primitive — under the runtime
sanitizer, and asserts that **every op the audit proved coalesced stays
within the transaction bound its verdict implies**:

* stride 0 (broadcast): at most ``1`` segment transaction per active
  warp (elements never straddle 128-byte segments — ``segment_bytes``
  is a multiple of every itemsize);
* stride ``±1``: the warp's footprint spans
  ``(warp_size - 1) * |s| + 1`` elements, i.e. at most
  ``ceil(span_bytes / segment_bytes) + 1`` segments per active warp
  (the ``+1`` covers arbitrary alignment of the warp's base address).

Observed transactions above the bound mean the abstract interpretation
claimed an access pattern the hardware model disagrees with — a bug in
the analyzer, by definition, since ``count_transactions`` *is* the
ground truth the paper's Table III numbers come from.  Gather/strided/
unproven verdicts make no upper-bound claim and are not checked.

Static ops the replay never executes are reported as coverage notes,
not failures: the audit is exactly as useful on launch paths the tier-1
datasets skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..gpusim.device import Device
from ..gpusim.kernel import OpRecord, set_op_observer
from .dataflow import OpVerdict, VERDICT_COALESCED, collect_op_verdicts

#: Line-distance tolerance when matching a runtime frame to a static op
#: (multi-line call expressions report the opening line in both, but the
#: tolerance keeps the match robust to formatting).
_LINE_TOLERANCE = 3


@dataclass(frozen=True)
class CalibrationMismatch:
    """One proven-coalesced op that exceeded its transaction bound."""

    file: str
    line: int
    kind: str
    array: str
    kernel: str
    stride: int
    tx: int
    bound: int
    warps: int

    def format(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.kind} on '{self.array}' in "
            f"kernel '{self.kernel}' proven coalesced (stride {self.stride}) "
            f"but issued {self.tx} transactions across {self.warps} warps "
            f"(bound {self.bound})"
        )


@dataclass
class CalibrationReport:
    """Outcome of one calibration replay."""

    records: int = 0            # runtime op records observed
    matched: int = 0            # records matched to a static op
    checked: int = 0            # records checked against a coalesced bound
    agreements: int = 0
    mismatches: list[CalibrationMismatch] = field(default_factory=list)
    coalesced_ops: int = 0      # static coalesced ops in the audited paths
    observed_ops: int = 0       # of those, ops hit by at least one record
    unobserved: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.checked > 0

    def summary(self) -> str:
        cov = (
            f"{self.observed_ops}/{self.coalesced_ops}"
            if self.coalesced_ops else "0/0"
        )
        return (
            f"calibration: {self.records} runtime ops, {self.matched} "
            f"matched to static ops, {self.checked} checked against "
            f"coalescing bounds, {self.agreements} within bound, "
            f"{len(self.mismatches)} mismatches; static coalesced-op "
            f"coverage {cov}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "records": self.records,
            "matched": self.matched,
            "checked": self.checked,
            "agreements": self.agreements,
            "mismatches": [m.format() for m in self.mismatches],
            "coalesced_op_coverage": [self.observed_ops, self.coalesced_ops],
            "unobserved": list(self.unobserved),
            "ok": self.ok,
        }


def transaction_bound(
    stride: int, warp_size: int, itemsize: int, segment_bytes: int,
) -> int:
    """Max 128-byte-segment transactions one active warp can issue for a
    coalesced access of the given concrete |stride|."""
    if stride == 0:
        return 1
    span_bytes = ((warp_size - 1) * stride + 1) * itemsize
    return -(-span_bytes // segment_bytes) + 1


def _match_static(
    verdicts: dict[tuple[str, int], list[OpVerdict]],
    rec: OpRecord,
) -> Optional[OpVerdict]:
    """Find the static op a runtime record corresponds to."""
    fname = str(Path(rec.file).resolve())
    exact = verdicts.get((fname, rec.line))
    if exact:
        for v in exact:
            if v.kind == rec.kind:
                return v
        return exact[0]
    for delta in range(1, _LINE_TOLERANCE + 1):
        for line in (rec.line - delta, rec.line + delta):
            near = verdicts.get((fname, line))
            if near:
                for v in near:
                    if v.kind == rec.kind:
                        return v
    return None


# ---------------------------------------------------------------------------
# Tier-1 workload replay
# ---------------------------------------------------------------------------

def _run_pipeline_workloads(n_sites: int, seed: int) -> None:
    """The end-to-end tier-1 surface: optimized, fused, and baseline."""
    from ..core.likelihood import BASELINE, OPTIMIZED
    from ..core.pipeline import GsnpPipeline
    from ..seqsim.datasets import DatasetSpec, generate_dataset

    dataset = generate_dataset(DatasetSpec(
        name="chrCal", n_sites=n_sites, depth=10.0, coverage=0.9,
        seed=seed,
    ))
    window = max(256, n_sites // 4)
    for variant, fusion in ((OPTIMIZED, False), (OPTIMIZED, True),
                            (BASELINE, False)):
        # Calibration probes run one isolated sanitized device per
        # variant on purpose; pool link accounting is irrelevant here.
        device = Device(sanitize=True)  # gsnp-lint: disable=GSNP110
        GsnpPipeline(
            window_size=window, mode="gpu", variant=variant, device=device,
            prefetch=False, cache=False, fusion=fusion,
        ).run(dataset)


def _run_primitive_probes(seed: int) -> None:
    """Direct launches of every device primitive the pipeline composes,
    including paths tier-1 datasets may skip (global-memory bitonic,
    standalone scan/reduce/search)."""
    from ..compress.rle_dict import rle_dict_encode_gpu
    from ..gpusim.primitives.reduce import device_reduce, segmented_reduce
    from ..gpusim.primitives.scan import device_exclusive_scan
    from ..gpusim.primitives.search import device_binary_search
    from ..gpusim.primitives.segmented import segmented_dict_indices
    from ..gpusim.primitives.sort import device_radix_sort
    from ..gpusim.primitives.unique import device_unique
    from ..sortnet.batch import batch_sort

    rng = np.random.default_rng(seed)
    # Isolated sanitized probe device: microbenchmark counters must not
    # mix with any pool's shared-link or residency state.
    device = Device(sanitize=True)  # gsnp-lint: disable=GSNP110

    keys = rng.integers(0, 1 << 20, size=2000).astype(np.uint32)
    keys_dev = device.to_device(keys, "cal_keys")
    device_radix_sort(device, keys_dev)

    sorted_keys = np.sort(keys)
    sorted_dev = device.to_device(sorted_keys, "cal_sorted")
    uniq = device_unique(device, sorted_dev)
    needles = device.to_device(
        rng.choice(np.unique(sorted_keys), size=500), "cal_needles"
    )
    device_binary_search(device, needles, uniq)

    vals = device.to_device(
        rng.integers(0, 100, size=1500).astype(np.uint32), "cal_vals"
    )
    device_reduce(device, vals)
    device_exclusive_scan(device, vals)

    bounds = np.sort(rng.choice(np.arange(1, 1500), size=30, replace=False))
    offsets = device.to_device(
        np.concatenate([[0], bounds, [1500]]).astype(np.int64), "cal_offs"
    )
    segmented_reduce(device, vals, offsets)
    segmented_dict_indices(device, [
        rng.integers(0, 64, size=200).astype(np.uint32) for _ in range(4)
    ])

    rle_dict_encode_gpu(
        device, np.repeat(rng.integers(0, 6, size=60), 25).astype(np.uint8)
    )

    # Oversized rows force the global-memory bitonic path (shared tile
    # capacity is 48 KB; 16384 * 4 bytes exceeds it).
    big = rng.integers(0, 1 << 30, size=(2, 16384)).astype(np.uint32)
    batch_sort(device, big, elem_bytes=4)
    # Small rows take the shared-memory tile path.
    small = rng.integers(0, 1 << 16, size=(8, 64)).astype(np.uint32)
    batch_sort(device, small, elem_bytes=4)


def run_calibration(
    paths: Sequence[Union[str, Path]],
    n_sites: int = 1500,
    seed: int = 20110711,
    workloads: bool = True,
    probes: bool = True,
) -> CalibrationReport:
    """Replay tier-1 kernels and check every proven coalescing verdict.

    ``paths`` are the audited sources (the same argument ``gsnp-audit``
    received); runtime ops from files outside them are ignored.
    """
    verdicts = collect_op_verdicts(paths)
    records: list[OpRecord] = []
    prev = set_op_observer(records.append)
    try:
        if workloads:
            _run_pipeline_workloads(n_sites, seed)
        if probes:
            _run_primitive_probes(seed)
    finally:
        set_op_observer(prev)

    report = CalibrationReport(records=len(records))
    observed_keys: set[tuple[str, int, int]] = set()
    for rec in records:
        v = _match_static(verdicts, rec)
        if v is None:
            continue
        report.matched += 1
        observed_keys.add((str(Path(v.path).resolve()), v.line, v.col))
        if v.verdict != VERDICT_COALESCED or v.stride is None:
            continue
        if rec.kind == "cload":
            continue  # constant cache: no transaction counting to check
        bound = rec.warps * transaction_bound(
            v.stride, rec.warp_size, rec.itemsize, rec.segment_bytes
        )
        report.checked += 1
        if rec.tx <= bound:
            report.agreements += 1
        else:
            report.mismatches.append(CalibrationMismatch(
                file=rec.file, line=rec.line, kind=rec.kind,
                array=rec.array, kernel=rec.kernel, stride=v.stride,
                tx=rec.tx, bound=bound, warps=rec.warps,
            ))

    for (fname, line), ops in sorted(verdicts.items()):
        for v in ops:
            if v.verdict != VERDICT_COALESCED or v.kind == "cload":
                continue
            report.coalesced_ops += 1
            if (fname, line, v.col) in observed_keys:
                report.observed_ops += 1
            else:
                report.unobserved.append(
                    f"{v.path}:{v.line} {v.kind} on '{v.array}' "
                    f"in '{v.kernel}'"
                )
    return report


__all__ = [
    "CalibrationMismatch",
    "CalibrationReport",
    "run_calibration",
    "transaction_bound",
]
