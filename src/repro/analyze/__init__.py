"""Static and runtime analysis enforcing the simulator's SIMT discipline.

Two complementary tools guard the property every paper-level claim rests
on — that *all* simulated kernel memory traffic is routed through
:class:`~repro.gpusim.kernel.KernelContext` and follows the lockstep idiom:

* :mod:`repro.analyze.lint` — the ``gsnp-lint`` static AST checker that
  discovers kernel bodies and flags SIMT-discipline violations with
  ``file:line`` diagnostics.
* :mod:`repro.analyze.sanitize` — the runtime sanitizer behind
  ``Device(sanitize=True)`` (compute-sanitizer/racecheck-style): data
  races, read-after-write hazards, store/atomic mixing, uninitialized
  reads, and device-teardown leak checks.
"""

from .lint import Diagnostic, RULES, lint_file, lint_paths, lint_source
from .sanitize import Sanitizer, SanitizerIssue

__all__ = [
    "Diagnostic",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "SanitizerIssue",
]
