"""Static and runtime analysis enforcing the simulator's SIMT discipline.

Three complementary tools guard the property every paper-level claim
rests on — that *all* simulated kernel memory traffic is routed through
:class:`~repro.gpusim.kernel.KernelContext` and follows the lockstep idiom:

* :mod:`repro.analyze.lint` — the ``gsnp-lint`` static AST checker that
  discovers kernel bodies and flags SIMT-discipline violations with
  ``file:line`` diagnostics.
* :mod:`repro.analyze.dataflow` (with :mod:`repro.analyze.ir`) — the
  ``gsnp-audit`` whole-kernel dataflow analyzer: abstract interpretation
  over an affine-in-tid lattice that *proves* coalescing class per memory
  op (GSNP201), provable static races (GSNP202), uninitialized global
  reads (GSNP203), missing-barrier hazards (GSNP204), and says
  ``unproven`` out loud when it cannot decide (GSNP205).
  :mod:`repro.analyze.calibrate` cross-checks every proven coalescing
  verdict against the simulator's runtime transaction counters.
* :mod:`repro.analyze.sanitize` — the runtime sanitizer behind
  ``Device(sanitize=True)`` (compute-sanitizer/racecheck-style): data
  races, read-after-write hazards, store/atomic mixing, uninitialized
  reads, and device-teardown leak checks.

Kernel discovery (definitions, launch sites, and aliases) is shared
between the tools via :mod:`repro.analyze.discover`; output formats
(text / json / github) via :mod:`repro.analyze.report`.
"""

from .calibrate import CalibrationReport, run_calibration, transaction_bound
from .dataflow import (
    AbstractValue,
    KernelAudit,
    ModuleAudit,
    OpVerdict,
    audit_file,
    audit_paths,
    audit_source,
)
from .discover import DiscoveredKernels, discover_kernels, iter_python_files
from .ir import KernelIR, KernelOp, extract_kernel_ir, extract_module_ir
from .lint import Diagnostic, RULES, lint_file, lint_paths, lint_source
from .report import FORMATS, render_diagnostics
from .sanitize import Sanitizer, SanitizerIssue

__all__ = [
    "AbstractValue",
    "CalibrationReport",
    "Diagnostic",
    "DiscoveredKernels",
    "FORMATS",
    "KernelAudit",
    "KernelIR",
    "KernelOp",
    "ModuleAudit",
    "OpVerdict",
    "RULES",
    "Sanitizer",
    "SanitizerIssue",
    "audit_file",
    "audit_paths",
    "audit_source",
    "discover_kernels",
    "extract_kernel_ir",
    "extract_module_ir",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_diagnostics",
    "run_calibration",
    "transaction_bound",
]
