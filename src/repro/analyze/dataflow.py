"""Abstract interpretation over kernel IR: the ``gsnp-audit`` analyzer.

The paper's throughput claims rest on *provable* memory-access
structure: §IV's coalescing discipline (82 vs 3.2 GB/s), Table III's
transaction counts, and the bitwise CPU/GPU score parity that the
barrier discipline protects.  The runtime sanitizer only checks the
schedules it executes; this module proves the properties for **all**
launches of a kernel, from the source alone.

Abstract domain
---------------
Every kernel-local value is classified on a small lattice:

``Affine(stride, offset)``
    ``value[t] = stride * t + offset`` for thread id ``t``.  ``stride``
    and ``offset`` are concrete ints when provable, ``None`` when
    symbolic (a host scalar such as a window size).  ``clamped=True``
    marks an affine expression passed through ``np.minimum`` /
    ``np.maximum`` / ``.clip`` against thread-uniform bounds — the
    memory span can only shrink.  ``stride == 0`` with one concrete
    value per launch is exactly a *thread-uniform* (host) scalar, so
    uniforms are affine values; the lockstep execution model guarantees
    any pure function of uniforms is uniform.

``TidPerm``
    a non-affine but *deterministic per-thread* function of ``tid``
    (``tid % m``, ``col ^ j``): a permutation-style gather.

``DataDep``
    derived from loaded data or host-provided vectors: a data-dependent
    gather.

``Unknown``
    nothing provable.  Memory ops indexed by Unknown are reported as
    GSNP205 ``unproven`` — the analyzer never silently passes them.

Verdicts (GSNP201, severity *note*): an affine index with stride 0
(broadcast) or ±1 is **coalesced**; any other affine stride is
**strided**; TidPerm/DataDep are **gather**; Unknown is **unproven**.
Only *coalesced* verdicts are load-bearing claims — ``--calibrate``
(:mod:`repro.analyze.calibrate`) replays tier-1 kernels and asserts the
runtime transaction counters stay within the proven bound for every one
of them.

Static checks (severity *error*):

========  =====================  ==========================================
GSNP202   static-race            two ops on the same array in the same
                                 barrier region (or across iterations of a
                                 barrier-free loop) with *provably*
                                 overlapping affine index sets, at least
                                 one a store — a WW or RAW race witnessed
                                 by concrete thread ids
GSNP203   static-uninit-read     a load from an ``alloc(..., init=False)``
                                 allocation with no dominating store to
                                 that parameter (tracked interprocedurally
                                 through launch sites)
GSNP204   missing-barrier-hazard a masked store followed by a full-warp
                                 load of the same array in the same
                                 barrier region, when the load is not
                                 provably same-lane
GSNP205   unproven-access        an index the lattice cannot classify
========  =====================  ==========================================

Races and hazards are reported only when *provable* (concrete witness
thread ids); everything symbolic stays the runtime sanitizer's job —
the two layers are complementary by design, and DESIGN.md documents the
soundness contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .discover import discover_kernels, iter_python_files
from .ir import (
    CTX_MEM_METHODS,
    KernelIR,
    KernelOp,
    MASK_MASKED,
    extract_kernel_ir,
)
from .lint import Diagnostic, _is_suppressed, _suppressions, normalize_rules

# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

AFFINE = "affine"
TIDPERM = "tidperm"
DATADEP = "datadep"
UNKNOWN = "unknown"

#: Witness search space for provable race pairs.  Conflicts between
#: concrete affine index maps, if they exist at all, show up among the
#: first few hundred thread ids.
_WITNESS_RANGE = 257


@dataclass(frozen=True)
class AbstractValue:
    """One point on the audit lattice (see module docstring)."""

    kind: str
    stride: Optional[int] = None     # concrete stride, None = symbolic
    offset: Optional[int] = None     # concrete offset, None = symbolic
    clamped: bool = False
    why: str = ""                    # provenance, used in messages

    @property
    def is_affine(self) -> bool:
        return self.kind == AFFINE

    @property
    def is_uniform(self) -> bool:
        """Thread-uniform: affine with provably zero stride."""
        return self.kind == AFFINE and self.stride == 0

    @property
    def concrete(self) -> bool:
        return (
            self.kind == AFFINE
            and self.stride is not None
            and self.offset is not None
        )

    def describe(self) -> str:
        if self.kind == AFFINE:
            s = "?" if self.stride is None else str(self.stride)
            o = "?" if self.offset is None else str(self.offset)
            tag = ", clamped" if self.clamped else ""
            return f"affine(stride={s}, offset={o}{tag})"
        return self.kind if not self.why else f"{self.kind} ({self.why})"


def uniform(value: Optional[int] = None, why: str = "") -> AbstractValue:
    """A warp-uniform value: affine with stride 0 (offset = the value)."""
    return AbstractValue(AFFINE, stride=0, offset=value, why=why)


def affine(stride: Optional[int], offset: Optional[int],
           clamped: bool = False, why: str = "") -> AbstractValue:
    """An affine-in-tid value ``stride * ctx.tid + offset``."""
    return AbstractValue(AFFINE, stride=stride, offset=offset,
                         clamped=clamped, why=why)


def tidperm(why: str) -> AbstractValue:
    """A tid-derived but non-affine value (e.g. ``tid % m``)."""
    return AbstractValue(TIDPERM, why=why)


def datadep(why: str) -> AbstractValue:
    """A value that flows from memory contents or array parameters."""
    return AbstractValue(DATADEP, why=why)


def unknown(why: str) -> AbstractValue:
    """Top: nothing provable about the value (opaque call)."""
    return AbstractValue(UNKNOWN, why=why)


_TID = affine(1, 0, why="ctx.tid")

_SEVERITY = {DATADEP: 3, TIDPERM: 2, AFFINE: 1}


def _worst(*values: AbstractValue) -> AbstractValue:
    """The most conservative non-affine classification among operands."""
    out: Optional[AbstractValue] = None
    for v in values:
        if v.kind == UNKNOWN:
            return v
        if out is None or _SEVERITY[v.kind] > _SEVERITY[out.kind]:
            out = v
    return out if out is not None else unknown("no operands")


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two control-flow-merged values."""
    if a == b:
        return a
    if a.kind == UNKNOWN or b.kind == UNKNOWN:
        return unknown(a.why or b.why)
    if a.is_affine and b.is_affine:
        stride = a.stride if a.stride == b.stride else None
        offset = a.offset if a.offset == b.offset else None
        if stride is not None or offset is not None or (
            a.stride is None and b.stride is None
        ):
            return affine(stride, offset,
                          clamped=a.clamped or b.clamped,
                          why=a.why or b.why)
        return affine(None, None, why=a.why or b.why)
    return _worst(a, b)


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

#: NumPy constructors whose results are thread-uniform (one value or a
#: broadcast fill per launch).
_UNIFORM_CTORS = frozenset({
    "zeros", "ones", "full", "empty", "zeros_like", "ones_like",
    "full_like", "empty_like",
})
#: NumPy clamp functions: affine in, affine (clamped) out.
_CLAMP_FUNCS = frozenset({"minimum", "maximum", "clip"})
#: ctx attributes that are thread-uniform scalars.
_CTX_UNIFORM_ATTRS = frozenset({
    "n_threads", "warp_size", "block_size", "n_warps", "device",
})
#: Attributes of any object that are host-side uniform scalars.
_UNIFORM_OBJ_ATTRS = frozenset({
    "size", "itemsize", "nbytes", "ndim", "dtype", "space", "shape",
})


class ExprEvaluator:
    """Evaluate one expression to an abstract value under an environment."""

    def __init__(self, env: dict[str, AbstractValue], ctx_name: str) -> None:
        self.env = env
        self.ctx_name = ctx_name

    def eval(self, node: Optional[ast.expr]) -> AbstractValue:
        if node is None:
            return unknown("missing expression")
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return unknown(f"unsupported syntax {type(node).__name__}")
        out: AbstractValue = method(node)
        return out

    # -- leaves ------------------------------------------------------------

    def _eval_Constant(self, node: ast.Constant) -> AbstractValue:
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            return uniform(why=f"constant {node.value!r}")
        if isinstance(node.value, int):
            return uniform(node.value, why=f"constant {node.value}")
        return uniform(why=f"constant {node.value!r}")

    def _eval_Name(self, node: ast.Name) -> AbstractValue:
        if node.id in self.env:
            return self.env[node.id]
        if node.id.isupper():
            # Module-level UPPER_CASE constants (imported or local) are
            # host-side launch-uniform scalars by repo convention.
            return uniform(why=f"constant {node.id}")
        return unknown(f"unbound name '{node.id}'")

    def _eval_Attribute(self, node: ast.Attribute) -> AbstractValue:
        if isinstance(node.value, ast.Name) and node.value.id == self.ctx_name:
            if node.attr == "tid":
                return _TID
            if node.attr in _CTX_UNIFORM_ATTRS:
                return uniform(why=f"ctx.{node.attr}")
            return unknown(f"ctx.{node.attr}")
        if node.attr in _UNIFORM_OBJ_ATTRS:
            return uniform(why=f"host scalar .{node.attr}")
        base = self.eval(node.value)
        if base.kind == UNKNOWN:
            # An attribute of a host object (params object, tables
            # bundle) is host data: data-dependent, never tid-affine.
            return datadep(f"host attribute '{ast.unparse(node)}'")
        return _worst(base)

    # -- arithmetic --------------------------------------------------------

    def _eval_BinOp(self, node: ast.BinOp) -> AbstractValue:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if left.kind == UNKNOWN or right.kind == UNKNOWN:
            return _worst(left, right)
        if not (left.is_affine and right.is_affine):
            return _worst(left, right)
        op = node.op
        if isinstance(op, ast.Add):
            return self._affine_add(left, right, 1)
        if isinstance(op, ast.Sub):
            return self._affine_add(left, right, -1)
        if isinstance(op, ast.Mult):
            return self._affine_mul(left, right)
        if isinstance(op, ast.LShift):
            if right.is_uniform:
                if right.offset is not None and left.stride is not None:
                    return affine(
                        left.stride << right.offset,
                        None if left.offset is None
                        else left.offset << right.offset,
                        clamped=left.clamped, why=left.why,
                    )
                if left.is_uniform:
                    return uniform(why="uniform shift")
                return affine(None, None, why="symbolic shift")
            return _worst(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
                           ast.BitAnd, ast.BitOr, ast.BitXor, ast.RShift)):
            if left.is_uniform and right.is_uniform:
                return uniform(why="uniform arithmetic")
            # A non-linear op applied to a tid-affine value yields a
            # deterministic per-thread permutation, not an affine map.
            return tidperm(f"'{ast.unparse(node)}' is non-affine in tid")
        return _worst(left, right)

    @staticmethod
    def _affine_add(a: AbstractValue, b: AbstractValue,
                    sign: int) -> AbstractValue:
        def add(x: Optional[int], y: Optional[int]) -> Optional[int]:
            if x is None or y is None:
                return None
            return x + sign * y
        stride = add(a.stride, b.stride)
        if a.stride == 0 and b.stride is None:
            stride = None  # symbolic-stride term survives
        if stride is None and a.stride == 0 and b.stride == 0:
            stride = 0
        return affine(stride, add(a.offset, b.offset),
                      clamped=a.clamped or b.clamped,
                      why=a.why or b.why)

    @staticmethod
    def _affine_mul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
        if a.is_uniform or b.is_uniform:
            u, v = (a, b) if a.is_uniform else (b, a)
            if u.offset is not None and v.stride is not None:
                return affine(
                    v.stride * u.offset,
                    None if v.offset is None else v.offset * u.offset,
                    clamped=v.clamped, why=v.why,
                )
            if v.is_uniform:
                return uniform(why="uniform product")
            return affine(None, None, why="symbolic scale")
        return tidperm("product of two tid-varying terms")

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbstractValue:
        val = self.eval(node.operand)
        if isinstance(node.op, ast.USub) and val.is_affine:
            return affine(
                None if val.stride is None else -val.stride,
                None if val.offset is None else -val.offset,
                clamped=val.clamped, why=val.why,
            )
        if val.is_affine:
            return val if isinstance(node.op, ast.UAdd) else _worst(
                val, tidperm("unary op on tid-varying value")
                if not val.is_uniform else uniform(why=val.why)
            )
        return val

    # -- comparisons / boolean masks --------------------------------------

    def _mask_like(self, *parts: AbstractValue) -> AbstractValue:
        w = _worst(*parts)
        if w.kind == AFFINE and not w.is_uniform:
            return tidperm("boolean mask over tid")
        if w.is_uniform:
            return uniform(why="uniform predicate")
        return w

    def _eval_Compare(self, node: ast.Compare) -> AbstractValue:
        parts = [self.eval(node.left)] + [
            self.eval(c) for c in node.comparators
        ]
        return self._mask_like(*parts)

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbstractValue:
        return self._mask_like(*[self.eval(v) for v in node.values])

    # -- structured expressions -------------------------------------------

    def _eval_IfExp(self, node: ast.IfExp) -> AbstractValue:
        cond = self.eval(node.test)
        body = self.eval(node.body)
        orelse = self.eval(node.orelse)
        if cond.is_uniform:
            return join(body, orelse)
        return _worst(cond, body, orelse)

    def _eval_Tuple(self, node: ast.Tuple) -> AbstractValue:
        return _worst(*[self.eval(e) for e in node.elts])

    def _eval_List(self, node: ast.List) -> AbstractValue:
        return _worst(*[self.eval(e) for e in node.elts])

    def _eval_Subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        if base.kind == UNKNOWN:
            return base
        parts = [base]
        for n in ast.walk(node.slice):
            if isinstance(n, ast.expr) and not isinstance(
                n, (ast.Slice, ast.Tuple)
            ):
                parts.append(self.eval(n))
                break
        w = _worst(*parts)
        if w.is_affine and not w.is_uniform:
            # arr[affine-in-tid] is a per-thread selection from host
            # data: data-dependent, not affine.
            return datadep(f"subscript '{ast.unparse(node)}'")
        return w

    def _eval_Call(self, node: ast.Call) -> AbstractValue:
        func = node.func
        fname = ""
        if isinstance(func, ast.Attribute):
            fname = func.attr
        elif isinstance(func, ast.Name):
            fname = func.id
        args = [self.eval(a) for a in node.args]
        kwargs = [self.eval(kw.value) for kw in node.keywords]

        # Routed loads produce data-dependent values.
        if fname in CTX_MEM_METHODS:
            arr = ast.unparse(node.args[0]) if node.args else "?"
            return datadep(f"loaded from '{arr}'")
        if isinstance(func, ast.Name) and func.id in self.env:
            aliased = self.env[func.id]
            if aliased.kind == DATADEP and aliased.why.startswith("ctx-mem"):
                arr = ast.unparse(node.args[0]) if node.args else "?"
                return datadep(f"loaded from '{arr}'")

        if fname in _CLAMP_FUNCS:
            # np.minimum/np.maximum(affine, uniform) and
            # affine_expr.clip(...) keep the affine map, clamped.
            base_parts: list[AbstractValue] = list(args)
            if isinstance(func, ast.Attribute) and fname == "clip":
                base_parts = [self.eval(func.value)] + base_parts
            affines = [v for v in base_parts if v.is_affine
                       and not v.is_uniform]
            others = [v for v in base_parts if not (v.is_affine
                                                   and not v.is_uniform)]
            if len(affines) == 1 and all(o.is_uniform for o in others):
                return replace(affines[0], clamped=True)
            if all(v.is_uniform for v in base_parts):
                return uniform(why="uniform clamp")
            return _worst(*base_parts)

        if fname in _UNIFORM_CTORS:
            # np.zeros(n_threads), np.full(n, c, ...): one broadcast
            # value per launch.
            fill = None
            if fname == "full" and len(node.args) >= 2:
                fv = self.eval(node.args[1])
                fill = fv.offset if fv.is_uniform else None
            elif fname in ("zeros", "zeros_like"):
                fill = 0
            elif fname in ("ones", "ones_like"):
                fill = 1
            return uniform(fill, why=f"np.{fname}")

        if fname == "arange":
            # idx[t] = start + step * t when indexed per-thread.
            start, step = 0, 1
            vals = [self.eval(a) for a in node.args]
            if len(vals) >= 2 and vals[0].is_uniform:
                start = vals[0].offset if vals[0].offset is not None else None
            if len(vals) >= 3 and vals[2].is_uniform:
                step = vals[2].offset if vals[2].offset is not None else None
            return affine(step, start if len(vals) >= 2 else 0,
                          why="np.arange")

        if fname == "where":
            if len(args) == 3:
                cond, a, b = args
                if cond.is_uniform:
                    return join(a, b)
                merged = join(a, b)
                if merged == a and merged == b:
                    return merged  # both arms identical: selection moot
                return _worst(datadep("np.where selection"), *args) \
                    if any(v.kind == DATADEP for v in (cond, a, b)) \
                    else tidperm("np.where over tid-varying condition")
            return _worst(*args) if args else unknown("np.where()")

        if fname == "astype" and isinstance(func, ast.Attribute):
            return self.eval(func.value)

        # Generic call: uniform in, uniform out (lockstep host math);
        # any tid-varying or data input degrades the result.
        parts = args + kwargs
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value)
            if not (isinstance(func.value, ast.Name)
                    and func.value.id == self.ctx_name):
                parts = [recv] + parts
        if parts and all(v.is_uniform for v in parts):
            return uniform(why=f"uniform call '{fname}'")
        if not parts:
            # A nullary call of an unknown function can return anything,
            # including a per-thread vector.
            return unknown(f"opaque call '{fname}()'")
        w = _worst(*parts)
        if w.kind == AFFINE:
            # A function of a tid-affine value is not provably affine.
            return tidperm(f"call '{fname}' of tid-varying value")
        return w

    def _eval_Starred(self, node: ast.Starred) -> AbstractValue:
        return self.eval(node.value)

    def _eval_NamedExpr(self, node: ast.NamedExpr) -> AbstractValue:
        val = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = val
        return val


# ---------------------------------------------------------------------------
# Kernel-level analysis
# ---------------------------------------------------------------------------

_INT_ANNOTATIONS = frozenset({"int", "float", "bool", "np.integer"})


def _param_value(arg: ast.arg) -> AbstractValue:
    """Initial abstract value for one kernel parameter."""
    ann = arg.annotation
    if ann is not None:
        text = ast.unparse(ann)
        if text in _INT_ANNOTATIONS:
            return uniform(why=f"scalar param '{arg.arg}'")
        if "ndarray" in text or "DeviceArray" in text:
            return datadep(f"vector param '{arg.arg}'")
        return datadep(f"param '{arg.arg}' ({text})")
    # Unannotated non-ctx params: host data, conservatively
    # data-dependent (a uniform misread as datadep only widens a
    # coalesced claim to gather — sound for calibration).
    return datadep(f"param '{arg.arg}'")


class KernelAnalysis:
    """Abstract-interpret one kernel body and attach verdicts to its ops."""

    def __init__(self, kir: KernelIR) -> None:
        self.ir = kir
        func = kir.func
        self.env: dict[str, AbstractValue] = {}
        args = func.args
        params = args.posonlyargs + args.args
        for a in params[1:]:
            self.env[a.arg] = _param_value(a)
        for a in args.kwonlyargs:
            self.env[a.arg] = _param_value(a)
        # Parameters used as the *array* operand of a routed call are
        # device arrays, not index sources; keep them datadep.
        self.evaluator = ExprEvaluator(self.env, kir.ctx_name)
        self.index_values: dict[int, AbstractValue] = {}
        self.mask_values: dict[int, AbstractValue] = {}

    # -- environment construction -----------------------------------------

    def run(self) -> None:
        # Two passes: the first discovers loop-carried rebindings
        # (``lo = np.where(...)`` feeding back into ``mid``), the second
        # evaluates every op's index under the stabilized environment.
        # Joins only move up the lattice, so two passes reach the
        # fixpoint for the loop-free-in-the-lattice bodies kernels have.
        for _ in range(2):
            self._exec_block(self.ir.func.body)
        for op in self.ir.mem_ops():
            self.index_values[id(op)] = self.evaluator.eval(op.index)
            if op.mask.kind == MASK_MASKED and op.mask.node is not None:
                self.mask_values[id(op)] = self.evaluator.eval(op.mask.node)

    def _assign(self, target: ast.expr, value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            prev = self.env.get(target.id)
            self.env[target.id] = value if prev is None else join(prev, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, value)
        elif isinstance(target, ast.Subscript):
            # Writing through a subscript makes the base data-dependent.
            if isinstance(target.value, ast.Name):
                name = target.value.id
                prev = self.env.get(name)
                mutated = datadep(f"mutated '{name}'")
                self.env[name] = mutated if prev is None else join(
                    prev, mutated
                )

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        ev = self.evaluator
        if isinstance(stmt, ast.Assign):
            value = ev.eval(stmt.value)
            for t in stmt.targets:
                self._assign(t, value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, ev.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = ev.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.get(stmt.target.id,
                                    unknown(f"unbound '{stmt.target.id}'"))
                combined = _worst(prev, value) if not (
                    prev.is_affine and value.is_affine
                ) else ExprEvaluator._affine_add(prev, value, 1)
                self.env[stmt.target.id] = combined
            else:
                self._assign(stmt.target, value)
        elif isinstance(stmt, ast.For):
            self._assign(stmt.target, self._loop_target_value(stmt))
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Expr):
            ev.eval(stmt.value) if isinstance(stmt.value, ast.expr) else None
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs audited separately if they are kernels
        elif isinstance(stmt, (ast.Try,)):
            self._exec_block(stmt.body)
            for h in stmt.handlers:
                self._exec_block(h.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)

    def _loop_target_value(self, stmt: ast.For) -> AbstractValue:
        """Loop targets over host iterables are launch-uniform scalars.

        Lockstep semantics: every thread sees the same ``j`` in
        ``for j in range(...)`` / ``enumerate(GENOTYPES)`` — the loop is
        host control flow, not per-thread iteration (GSNP103 enforces
        that separately)."""
        it_val = self.evaluator.eval(stmt.iter)
        if it_val.kind in (DATADEP, TIDPERM):
            return _worst(it_val)
        return uniform(why="host loop variable")


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------

VERDICT_COALESCED = "coalesced"
VERDICT_STRIDED = "strided"
VERDICT_GATHER = "gather"
VERDICT_UNPROVEN = "unproven"


@dataclass(frozen=True)
class OpVerdict:
    """The audit's classification of one memory op."""

    kernel: str
    path: str
    line: int
    col: int
    kind: str            # gload|gstore|gatomic_add|cload
    array: str
    verdict: str
    detail: str
    stride: Optional[int] = None   # concrete |stride| when proven
    clamped: bool = False
    masked: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "kernel": self.kernel,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "op": self.kind,
            "array": self.array,
            "verdict": self.verdict,
            "detail": self.detail,
            "stride": self.stride,
            "clamped": self.clamped,
            "masked": self.masked,
        }


def classify(av: AbstractValue) -> tuple[str, Optional[int]]:
    """Map an abstract index value to (verdict, concrete |stride|)."""
    if av.kind == AFFINE:
        if av.stride is None:
            return VERDICT_STRIDED, None
        if av.stride in (0, 1, -1):
            return VERDICT_COALESCED, abs(av.stride)
        return VERDICT_STRIDED, abs(av.stride)
    if av.kind in (TIDPERM, DATADEP):
        return VERDICT_GATHER, None
    return VERDICT_UNPROVEN, None


@dataclass
class KernelAudit:
    """Everything the audit proved about one kernel."""

    ir: KernelIR
    verdicts: list[OpVerdict]
    diagnostics: list[Diagnostic]
    index_values: dict[int, AbstractValue]


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def _branches_compatible(a: KernelOp, b: KernelOp) -> bool:
    """False when the two ops sit in sibling arms of the same ``if`` —
    host-uniform conditions make the arms mutually exclusive within one
    launch."""
    for (ia, aa), (ib, ab) in zip(a.branch_path, b.branch_path):
        if ia == ib and aa != ab:
            return False
        if ia != ib:
            break
    return True


def _same_region(a: KernelOp, b: KernelOp) -> bool:
    if a.region == b.region:
        return True
    # Ops in the same barrier-free loop body re-execute every iteration
    # with no intervening sync, so distinct static regions still collide
    # across iterations.
    if (
        a.loop_id is not None
        and a.loop_id == b.loop_id
        and not a.loop_has_barrier
    ):
        return True
    return False


def _find_witness(
    sa: int, ca: int, sb: int, cb: int
) -> Optional[tuple[int, int]]:
    """Distinct thread ids (ta, tb) with ``sa*ta + ca == sb*tb + cb``."""
    for ta in range(_WITNESS_RANGE):
        lhs = sa * ta + ca
        if lhs < 0:
            continue
        if sb == 0:
            if lhs == cb and ta != 0:
                return (ta, 0)
            continue
        num = lhs - cb
        if num % sb == 0:
            tb = num // sb
            if 0 <= tb < _WITNESS_RANGE and tb != ta:
                return (ta, tb)
    return None


class _AuditChecks:
    """GSNP202/204/205 checks over one analyzed kernel."""

    def __init__(self, analysis: KernelAnalysis) -> None:
        self.ir = analysis.ir
        self.values = analysis.index_values
        self.diags: list[Diagnostic] = []

    def _flag(self, op: KernelOp, rule: str, message: str) -> None:
        self.diags.append(Diagnostic(
            path=self.ir.path, line=op.line, col=op.col,
            rule=rule, message=message,
        ))

    def run(self) -> list[Diagnostic]:
        mem = self.ir.mem_ops()
        self._check_unproven(mem)
        self._check_races(mem)
        self._check_missing_barrier(mem)
        return self.diags

    # -- GSNP205 -----------------------------------------------------------

    def _check_unproven(self, mem: list[KernelOp]) -> None:
        for op in mem:
            av = self.values[id(op)]
            if classify(av)[0] == VERDICT_UNPROVEN:
                self._flag(
                    op, "GSNP205",
                    f"{op.kind} on '{op.array_text}' in kernel "
                    f"'{self.ir.name}' has an unprovable index "
                    f"'{op.index_text}' ({av.describe()}); restructure the "
                    "index to be affine in ctx.tid or a routed gather so "
                    "the audit can classify it",
                )

    # -- GSNP202 -----------------------------------------------------------

    def _check_races(self, mem: list[KernelOp]) -> None:
        for i, a in enumerate(mem):
            av = self.values[id(a)]
            # Full-warp broadcast store: every live thread writes the
            # same element — a self-race needing no second op.
            if (
                a.is_store
                and av.is_uniform
                and a.mask.is_full
                and a.kind != "gatomic_add"
            ):
                self._flag(
                    a, "GSNP202",
                    f"full-warp {a.kind} on '{a.array_text}' in kernel "
                    f"'{self.ir.name}' writes one element "
                    f"('{a.index_text}' is thread-uniform) from every "
                    "thread: a write-write race; mask to one lane or use "
                    "ctx.gatomic_add",
                )
            for b in mem[i + 1:]:
                self._check_pair(a, b)

    def _check_pair(self, a: KernelOp, b: KernelOp) -> None:
        if a.array_text != b.array_text or not a.array_text:
            return
        if not (a.is_store or b.is_store):
            return
        if a.kind == "gatomic_add" and b.kind == "gatomic_add":
            return  # atomics serialize against each other
        if not _same_region(a, b):
            return
        if not _branches_compatible(a, b):
            return
        if not (a.mask.is_full and b.mask.is_full):
            return  # masked pairs are the runtime sanitizer's job
        va, vb = self.values[id(a)], self.values[id(b)]
        if not (va.concrete and vb.concrete):
            return
        assert va.stride is not None and va.offset is not None
        assert vb.stride is not None and vb.offset is not None
        if (va.stride, va.offset) == (vb.stride, vb.offset):
            # Same-lane accesses never cross threads.  (The degenerate
            # shared broadcast store case is handled above.)
            return
        witness = _find_witness(va.stride, va.offset, vb.stride, vb.offset)
        if witness is None:
            return
        ta, tb = witness
        kind = "write-write" if a.is_store and b.is_store else "read-write"
        cross = (
            " across iterations of the barrier-free loop at line "
            f"{a.loop_line}" if a.region != b.region else ""
        )
        self._flag(
            b, "GSNP202",
            f"static {kind} race on '{a.array_text}' in kernel "
            f"'{self.ir.name}': index '{a.index_text}' (line {a.line}) and "
            f"'{b.index_text}' collide at element "
            f"{va.stride * ta + va.offset} for threads t={ta} and t={tb} "
            f"in the same barrier region{cross}; separate the accesses "
            "with ctx.syncthreads()",
        )

    # -- GSNP204 -----------------------------------------------------------

    def _check_missing_barrier(self, mem: list[KernelOp]) -> None:
        for i, store in enumerate(mem):
            if not store.is_store or store.mask.kind != MASK_MASKED:
                continue
            vs = self.values[id(store)]
            for load in mem[i + 1:]:
                if not load.is_load:
                    continue
                if load.array_text != store.array_text:
                    continue
                if not load.mask.is_full:
                    continue
                if load.region != store.region:
                    continue
                if not _branches_compatible(store, load):
                    continue
                vl = self.values[id(load)]
                if (
                    vs.concrete and vl.concrete
                    and (vs.stride, vs.offset) == (vl.stride, vl.offset)
                ):
                    continue  # provably same-lane: each thread reads its own
                self._flag(
                    load, "GSNP204",
                    f"full-warp {load.kind} of '{load.array_text}' in "
                    f"kernel '{self.ir.name}' may read lanes the masked "
                    f"{store.kind} at line {store.line} (mask "
                    f"'{store.mask.text}') skipped or wrote concurrently; "
                    "insert ctx.syncthreads() between them",
                )


# ---------------------------------------------------------------------------
# GSNP203: interprocedural uninit-read tracking
# ---------------------------------------------------------------------------

def _uninit_alloc_names(tree: ast.Module) -> set[str]:
    """Names bound to ``<device>.alloc(..., init=False)`` results."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        call = node.value
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "alloc"
        ):
            continue
        uninit = any(
            kw.arg == "init"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        )
        if not uninit:
            continue
        for t in node.targets:
            if isinstance(t, ast.Name):
                out.add(t.id)
    return out


def _launch_bindings(
    tree: ast.Module, kernels_by_name: dict[str, KernelIR]
) -> list[tuple[KernelIR, dict[str, str]]]:
    """For each launch site, map kernel param name -> argument name.

    Only simple ``Name`` arguments are tracked; anything computed is out
    of scope for the static uninit check (the runtime shadow bitmap
    covers it).
    """
    from .discover import LAUNCH_ATTRS, LAUNCH_KWARGS, KernelFinder

    finder = KernelFinder()
    finder.visit(tree)
    out: list[tuple[KernelIR, dict[str, str]]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in LAUNCH_ATTRS
        ):
            continue
        target: Optional[ast.expr] = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg in LAUNCH_KWARGS:
                target = kw.value
        kname: Optional[str] = None
        if isinstance(target, ast.Name):
            kname = finder.resolve(target.id)
        elif isinstance(target, ast.Attribute):
            kname = target.attr
        if kname is None or kname not in kernels_by_name:
            continue
        kir = kernels_by_name[kname]
        binding: dict[str, str] = {}
        # launch(kernel, n_threads, *kernel_args): positional kernel
        # args start at call position 2 and map onto params after ctx.
        pos_args = node.args[2:]
        for param, arg in zip(kir.params, pos_args):
            if isinstance(arg, ast.Name):
                binding[param] = arg.id
        for kw in node.keywords:
            if kw.arg in kir.params and isinstance(kw.value, ast.Name):
                binding[kw.arg] = kw.value.id
        out.append((kir, binding))
    return out


def _check_uninit_reads(
    tree: ast.Module, kernel_irs: list[KernelIR]
) -> list[Diagnostic]:
    uninit = _uninit_alloc_names(tree)
    if not uninit:
        return []
    diags: list[Diagnostic] = []
    by_name = {k.name: k for k in kernel_irs}
    for kir, binding in _launch_bindings(tree, by_name):
        tainted = {p for p, arg in binding.items() if arg in uninit}
        if not tainted:
            continue
        stored: set[str] = set()
        for op in kir.ops:
            if op.kind in CTX_MEM_METHODS and op.array_param in tainted:
                if op.is_store:
                    stored.add(op.array_param)
                elif op.is_load and op.array_param not in stored:
                    diags.append(Diagnostic(
                        path=kir.path, line=op.line, col=op.col,
                        rule="GSNP203",
                        message=(
                            f"{op.kind} of param '{op.array_param}' in "
                            f"kernel '{kir.name}' reads an "
                            "alloc(init=False) allocation "
                            f"('{binding[op.array_param]}') with no "
                            "dominating store; initialize the allocation "
                            "or store before loading"
                        ),
                    ))
    return diags


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def audit_kernel(kir: KernelIR) -> KernelAudit:
    """Analyze one kernel: verdicts for every mem op + GSNP202/204/205."""
    analysis = KernelAnalysis(kir)
    analysis.run()
    verdicts: list[OpVerdict] = []
    diags: list[Diagnostic] = []
    for op in kir.mem_ops():
        av = analysis.index_values[id(op)]
        verdict, stride = classify(av)
        ov = OpVerdict(
            kernel=kir.name, path=kir.path, line=op.line, col=op.col,
            kind=op.kind, array=op.array_text, verdict=verdict,
            detail=av.describe(), stride=stride,
            clamped=av.is_affine and av.clamped,
            masked=op.mask.kind == MASK_MASKED,
        )
        verdicts.append(ov)
        diags.append(Diagnostic(
            path=kir.path, line=op.line, col=op.col, rule="GSNP201",
            severity="note",
            message=(
                f"{op.kind} on '{op.array_text}' in kernel '{kir.name}' "
                f"is {verdict} ({av.describe()})"
            ),
        ))
    diags.extend(_AuditChecks(analysis).run())
    return KernelAudit(
        ir=kir, verdicts=verdicts, diagnostics=diags,
        index_values=analysis.index_values,
    )


@dataclass
class ModuleAudit:
    """Audit results for one source file."""

    path: str
    kernels: list[KernelAudit] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def verdicts(self) -> list[OpVerdict]:
        return [v for k in self.kernels for v in k.verdicts]


def audit_source(source: str, path: str = "<string>") -> ModuleAudit:
    """Audit one module's source (suppression-filtered diagnostics)."""
    suppressions = _suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        diag = Diagnostic(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule="GSNP100", message=f"file does not parse: {exc.msg}",
        )
        mod = ModuleAudit(path=path)
        if not _is_suppressed(diag, suppressions):
            mod.diagnostics.append(diag)
        return mod
    kernel_irs = [
        extract_kernel_ir(func, path)
        for func in discover_kernels(tree).kernels
    ]
    mod = ModuleAudit(path=path)
    all_diags: list[Diagnostic] = []
    for kir in kernel_irs:
        ka = audit_kernel(kir)
        mod.kernels.append(ka)
        all_diags.extend(ka.diagnostics)
    all_diags.extend(_check_uninit_reads(tree, kernel_irs))
    mod.diagnostics = sorted(
        d for d in all_diags if not _is_suppressed(d, suppressions)
    )
    return mod


def audit_file(path: Union[str, Path]) -> ModuleAudit:
    """Audit one ``.py`` file."""
    p = Path(path)
    return audit_source(p.read_text(encoding="utf-8"), str(p))


def audit_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[ModuleAudit]:
    """Audit files / directory trees; rule filters match lint_paths."""
    sel = normalize_rules(select)
    ign = normalize_rules(ignore) or set()
    out: list[ModuleAudit] = []
    for f in iter_python_files(paths):
        mod = audit_file(f)
        mod.diagnostics = [
            d for d in mod.diagnostics
            if (sel is None or d.rule in sel) and d.rule not in ign
        ]
        out.append(mod)
    return out


def collect_op_verdicts(
    paths: Sequence[Union[str, Path]],
) -> dict[tuple[str, int], list[OpVerdict]]:
    """Index every op verdict by (resolved path, line) for calibration."""
    out: dict[tuple[str, int], list[OpVerdict]] = {}
    for mod in audit_paths(paths):
        for v in mod.verdicts:
            key = (str(Path(v.path).resolve()), v.line)
            out.setdefault(key, []).append(v)
    return out


__all__ = [
    "AFFINE", "TIDPERM", "DATADEP", "UNKNOWN",
    "AbstractValue", "ExprEvaluator", "KernelAnalysis",
    "VERDICT_COALESCED", "VERDICT_STRIDED", "VERDICT_GATHER",
    "VERDICT_UNPROVEN",
    "OpVerdict", "KernelAudit", "ModuleAudit",
    "classify", "join",
    "audit_kernel", "audit_source", "audit_file", "audit_paths",
    "collect_op_verdicts",
]
