"""Shared kernel discovery for the static analyzers.

``gsnp-lint`` and ``gsnp-audit`` both need the same answer to "which
functions in this module are simulated kernel bodies?".  A kernel is

* any function whose name ends in ``_kernel`` (the naming convention), or
* any function passed to a launch site — ``Device.launch(...)`` or
  ``DeviceStream.enqueue(...)`` — whether positionally (the first
  argument), by keyword (``launch(kernel=...)`` / ``enqueue(fn=...)``),
  or through a local alias (``body = my_kernel; device.launch(body, ...)``).

The runtime sanitizer (:mod:`repro.analyze.sanitize`) hooks the same
launch sites dynamically; this module is the static mirror of that
contract, factored out so the two linters can never drift apart on what
counts as a kernel.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence, Union

#: Method names that launch a kernel (``Device.launch``,
#: ``DeviceStream.enqueue``).
LAUNCH_ATTRS: tuple[str, ...] = ("launch", "enqueue")

#: Keyword names under which launch sites accept the kernel callable.
LAUNCH_KWARGS: tuple[str, ...] = ("kernel", "fn")

#: Maximum alias-chain length followed during resolution (cycle guard).
_MAX_ALIAS_DEPTH = 8


def _callable_name(node: ast.expr) -> str | None:
    """The name a launch-site argument refers to, if it is a simple ref."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class DiscoveredKernels:
    """The kernel inventory of one module."""

    #: Every function definition in the module (including nested ones).
    defs: list[ast.FunctionDef] = field(default_factory=list)
    #: Names referenced at launch sites, before alias resolution.
    launched: set[str] = field(default_factory=set)
    #: ``launched`` with local aliases followed to their targets.
    launched_resolved: set[str] = field(default_factory=set)
    #: Simple ``alias = target`` assignments seen in the module.
    aliases: dict[str, str] = field(default_factory=dict)
    #: The function definitions classified as kernel bodies.
    kernels: list[ast.FunctionDef] = field(default_factory=list)

    def kernel_names(self) -> list[str]:
        return [k.name for k in self.kernels]


class KernelFinder(ast.NodeVisitor):
    """Collect function defs, launch-site kernel refs, and name aliases."""

    def __init__(self) -> None:
        self.defs: list[ast.FunctionDef] = []
        self.launched: set[str] = set()
        self.aliases: dict[str, str] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.defs.append(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        # A simple ``alias = name`` (or ``alias = mod.attr``) binding: a
        # launch site may refer to the kernel through the alias.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target_name = _callable_name(node.value)
            if target_name is not None:
                self.aliases[node.targets[0].id] = target_name
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in LAUNCH_ATTRS:
            target: ast.expr | None = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg in LAUNCH_KWARGS:
                    target = kw.value
            if target is not None:
                name = _callable_name(target)
                if name is not None:
                    self.launched.add(name)
        self.generic_visit(node)

    def resolve(self, name: str) -> str:
        """Follow ``alias = target`` chains to the final referenced name."""
        seen = {name}
        for _ in range(_MAX_ALIAS_DEPTH):
            nxt = self.aliases.get(name)
            if nxt is None or nxt in seen:
                return name
            seen.add(nxt)
            name = nxt
        return name


def discover_kernels(tree: ast.AST) -> DiscoveredKernels:
    """Classify every kernel body in a parsed module."""
    finder = KernelFinder()
    finder.visit(tree)
    resolved = {finder.resolve(n) for n in finder.launched} | finder.launched
    kernels = [
        d
        for d in finder.defs
        if d.name.endswith("_kernel") or d.name in resolved
    ]
    return DiscoveredKernels(
        defs=finder.defs,
        launched=finder.launched,
        launched_resolved=resolved,
        aliases=dict(finder.aliases),
        kernels=kernels,
    )


def iter_python_files(
    paths: Sequence[Union[str, Path]],
) -> Iterator[Path]:
    """Yield ``.py`` files from a mix of files and directory trees."""
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


__all__ = [
    "LAUNCH_ATTRS",
    "LAUNCH_KWARGS",
    "DiscoveredKernels",
    "KernelFinder",
    "discover_kernels",
    "iter_python_files",
]
