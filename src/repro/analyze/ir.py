"""Per-kernel IR extraction for the static dataflow auditor.

``gsnp-audit`` does not analyze raw ASTs: it first lowers every kernel
body into a flat list of :class:`KernelOp` records — one per routed
memory operation (``ctx.gload`` / ``ctx.gstore`` / ``ctx.gatomic_add`` /
``ctx.cload``), shared-memory note (``ctx.note_shared``) and barrier
(``ctx.syncthreads``) — annotated with

* the *symbolic index expression* (the untouched AST of the index
  operand, plus its source text for messages),
* the *active mask* discipline (absent, explicit ``active=None``
  full-warp assertion, or a real mask expression),
* the *barrier region* (a counter that increments at every
  ``syncthreads`` on the same straight-line path),
* the innermost containing loop (and whether that loop body contains a
  barrier — the cross-iteration hazard criterion), and
* the conditional-branch path (which arm of which ``if`` the op sits
  in; host-uniform branches are mutually exclusive within one launch).

The abstract interpreter in :mod:`repro.analyze.dataflow` consumes this
IR.  Extraction is purely syntactic: no values are evaluated here.

One simulator-specific subtlety handled here is *ctx-method aliasing*::

    probe = ctx.cload if haystack.space == "constant" else ctx.gload
    v = probe(haystack, idx, active=active)

The binary-search kernel uses exactly this pattern; ``probe(...)`` is
recorded as a routed load (kind ``gload``, the conservative choice for
coalescing analysis) with the alias noted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .discover import discover_kernels

#: Routed memory methods on :class:`repro.gpusim.kernel.KernelContext`.
CTX_MEM_METHODS: frozenset[str] = frozenset(
    {"gload", "gstore", "gatomic_add", "cload"}
)
#: Methods that read global/constant memory.
CTX_LOADS: frozenset[str] = frozenset({"gload", "cload"})
#: Methods that write global memory.
CTX_STORES: frozenset[str] = frozenset({"gstore", "gatomic_add"})

#: Positional index of the ``active`` argument per method.
_ACTIVE_ARG_POS: dict[str, int] = {
    "gload": 2, "cload": 2, "gstore": 3, "gatomic_add": 3,
}

#: Sentinel mask kinds.
MASK_FULL_DEFAULT = "full-default"   # no active argument at all
MASK_FULL_ASSERT = "full-assert"     # explicit active=None
MASK_MASKED = "masked"               # a real mask expression


@dataclass(frozen=True)
class MaskInfo:
    """How one op addresses warp divergence."""

    kind: str   # one of the MASK_* sentinels
    text: str   # source text of the mask expression ("" when full)
    node: Optional[ast.expr] = field(default=None, compare=False)

    @property
    def is_full(self) -> bool:
        return self.kind != MASK_MASKED


@dataclass
class KernelOp:
    """One routed memory / barrier operation inside a kernel body."""

    kind: str                      # gload|gstore|gatomic_add|cload|
                                   # syncthreads|note_shared
    line: int
    col: int
    array_text: str = ""           # source text of the array operand
    array_param: Optional[str] = None  # param name when operand is a param
    index: Optional[ast.expr] = None   # symbolic index expression (AST)
    index_text: str = ""
    mask: MaskInfo = field(
        default_factory=lambda: MaskInfo(MASK_FULL_DEFAULT, "")
    )
    region: int = 0                # barrier region id (increments at sync)
    loop_id: Optional[int] = None  # id of innermost containing loop node
    loop_line: Optional[int] = None
    loop_has_barrier: bool = False
    branch_path: tuple[tuple[int, int], ...] = ()
    alias_of: Optional[str] = None  # local name when called via an alias

    @property
    def is_load(self) -> bool:
        return self.kind in CTX_LOADS

    @property
    def is_store(self) -> bool:
        return self.kind in CTX_STORES


@dataclass
class KernelIR:
    """The lowered form of one kernel body."""

    name: str
    path: str
    line: int
    ctx_name: str
    params: list[str]
    ops: list[KernelOp]
    n_barriers: int
    func: ast.FunctionDef = field(repr=False)

    def mem_ops(self) -> list[KernelOp]:
        return [op for op in self.ops if op.kind in CTX_MEM_METHODS]


def _source_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:
        return "<unprintable>"


class _CtxAliasCollector(ast.NodeVisitor):
    """Map local names bound to ctx memory methods.

    Handles ``probe = ctx.gload``, ``probe = ctx.cload if cond else
    ctx.gload`` and chains thereof.  The mapped value is the *set* of
    methods the alias may denote.
    """

    def __init__(self, ctx_name: str) -> None:
        self.ctx_name = ctx_name
        self.aliases: dict[str, frozenset[str]] = {}

    def _methods_of(self, node: ast.expr) -> frozenset[str]:
        if (
            isinstance(node, ast.Attribute)
            and node.attr in CTX_MEM_METHODS
            and isinstance(node.value, ast.Name)
            and node.value.id == self.ctx_name
        ):
            return frozenset({node.attr})
        if isinstance(node, ast.IfExp):
            return self._methods_of(node.body) | self._methods_of(node.orelse)
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, frozenset())
        return frozenset()

    def visit_Assign(self, node: ast.Assign) -> None:
        methods = self._methods_of(node.value)
        if methods:
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.aliases[t.id] = methods
        self.generic_visit(node)


def _pick_alias_kind(methods: frozenset[str]) -> str:
    """Collapse an alias's possible methods to one op kind.

    Prefer the *global*-memory interpretation: for coalescing analysis a
    gload is the conservative choice (cloads are broadcast-cached and
    never counted as transactions)."""
    for kind in ("gstore", "gatomic_add", "gload", "cload"):
        if kind in methods:
            return kind
    return "gload"


class _IRExtractor:
    """Walk one kernel body in source order, emitting KernelOps."""

    def __init__(self, func: ast.FunctionDef, path: str) -> None:
        self.func = func
        self.path = path
        args = func.args
        params = [a.arg for a in args.posonlyargs + args.args]
        self.ctx_name = params[0] if params else "ctx"
        self.params = params[1:]
        collector = _CtxAliasCollector(self.ctx_name)
        collector.visit(func)
        self.ctx_aliases = collector.aliases
        self.ops: list[KernelOp] = []
        self.region = 0
        self.n_barriers = 0
        self.loop_stack: list[ast.AST] = []
        self.branch_stack: list[tuple[int, int]] = []
        self._loops_with_barrier: set[int] = set()

    # -- op emission -------------------------------------------------------

    def _emit(self, node: ast.AST, kind: str, **kw: object) -> KernelOp:
        loop = self.loop_stack[-1] if self.loop_stack else None
        op = KernelOp(
            kind=kind,
            line=getattr(node, "lineno", self.func.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            region=self.region,
            loop_id=id(loop) if loop is not None else None,
            loop_line=getattr(loop, "lineno", None),
            branch_path=tuple(self.branch_stack),
            **kw,  # type: ignore[arg-type]
        )
        self.ops.append(op)
        return op

    def _mask_info(self, call: ast.Call, kind: str) -> MaskInfo:
        active: Optional[ast.expr] = None
        present = False
        pos = _ACTIVE_ARG_POS.get(kind)
        if pos is not None and len(call.args) > pos:
            active = call.args[pos]
            present = True
        for kw in call.keywords:
            if kw.arg == "active":
                active = kw.value
                present = True
        if not present:
            return MaskInfo(MASK_FULL_DEFAULT, "")
        if isinstance(active, ast.Constant) and active.value is None:
            return MaskInfo(MASK_FULL_ASSERT, "None")
        return MaskInfo(MASK_MASKED, _source_text(active), node=active)

    def _emit_mem(self, call: ast.Call, kind: str,
                  alias_of: Optional[str] = None) -> None:
        arr = call.args[0] if call.args else None
        idx = call.args[1] if len(call.args) > 1 else None
        for kw in call.keywords:
            if kw.arg in ("arr", "array"):
                arr = kw.value
            elif kw.arg in ("idx", "index"):
                idx = kw.value
        array_param: Optional[str] = None
        if isinstance(arr, ast.Name) and arr.id in self.params:
            array_param = arr.id
        self._emit(
            call, kind,
            array_text=_source_text(arr),
            array_param=array_param,
            index=idx,
            index_text=_source_text(idx),
            mask=self._mask_info(call, kind),
            alias_of=alias_of,
        )

    # -- traversal ---------------------------------------------------------

    def run(self) -> KernelIR:
        for stmt in self.func.body:
            self._visit(stmt)
        ops = self.ops
        for op in ops:
            if op.loop_id is not None:
                op.loop_has_barrier = op.loop_id in self._loops_with_barrier
        return KernelIR(
            name=self.func.name,
            path=self.path,
            line=self.func.lineno,
            ctx_name=self.ctx_name,
            params=list(self.params),
            ops=ops,
            n_barriers=self.n_barriers,
            func=self.func,
        )

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not self.func:
                return  # nested defs get their own IR if they are kernels
            for stmt in node.body:
                self._visit(stmt)
            return
        if isinstance(node, (ast.For, ast.While)):
            self._visit_loop(node)
            return
        if isinstance(node, ast.If):
            self._visit_if(node)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node)  # recurses into children itself
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_loop(self, node: ast.AST) -> None:
        self.loop_stack.append(node)
        barriers_before = self.n_barriers
        body = getattr(node, "body", [])
        orelse = getattr(node, "orelse", [])
        if isinstance(node, ast.For):
            self._visit(node.iter)
        elif isinstance(node, ast.While):
            self._visit(node.test)
        for stmt in body:
            self._visit(stmt)
        if self.n_barriers > barriers_before:
            self._loops_with_barrier.add(id(node))
        self.loop_stack.pop()
        for stmt in orelse:
            self._visit(stmt)

    def _visit_if(self, node: ast.If) -> None:
        self._visit(node.test)
        # Each arm gets a distinct (if-node, arm) tag so the conflict
        # checker can treat sibling arms as mutually exclusive.  Barriers
        # inside an arm still advance the global region counter: a
        # barrier under a host-uniform condition either runs for the
        # whole launch or not at all, and advancing the region in both
        # cases only ever *merges* fewer op pairs (conservative).
        self.branch_stack.append((id(node), 0))
        for stmt in node.body:
            self._visit(stmt)
        self.branch_stack.pop()
        self.branch_stack.append((id(node), 1))
        for stmt in node.orelse:
            self._visit(stmt)
        self.branch_stack.pop()

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in CTX_MEM_METHODS:
                self._emit_mem(node, func.attr)
            elif func.attr == "syncthreads":
                self.n_barriers += 1
                self._emit(node, "syncthreads")
                self.region += 1
            elif func.attr == "note_shared":
                self._emit(
                    node, "note_shared",
                    mask=self._mask_info(node, "note_shared"),
                )
        elif isinstance(func, ast.Name) and func.id in self.ctx_aliases:
            kind = _pick_alias_kind(self.ctx_aliases[func.id])
            self._emit_mem(node, kind, alias_of=func.id)
        for child in ast.iter_child_nodes(node):
            self._visit(child)


def extract_kernel_ir(func: ast.FunctionDef, path: str) -> KernelIR:
    """Lower one kernel body to its IR."""
    return _IRExtractor(func, path).run()


def extract_module_ir(tree: ast.Module, path: str) -> list[KernelIR]:
    """Lower every discovered kernel in a parsed module."""
    return [
        extract_kernel_ir(func, path)
        for func in discover_kernels(tree).kernels
    ]


__all__ = [
    "CTX_MEM_METHODS",
    "CTX_LOADS",
    "CTX_STORES",
    "MASK_FULL_DEFAULT",
    "MASK_FULL_ASSERT",
    "MASK_MASKED",
    "MaskInfo",
    "KernelOp",
    "KernelIR",
    "extract_kernel_ir",
    "extract_module_ir",
]
