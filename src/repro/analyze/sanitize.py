"""Runtime kernel sanitizer: racecheck/initcheck for the simulated GPU.

Enabled with ``Device(sanitize=True)``, this layers compute-sanitizer-style
checks into every :class:`~repro.gpusim.kernel.KernelContext` memory
operation:

* **write-write races** — two live lanes of one ``gstore`` (or two
  unsynchronized ``gstore`` calls in the same launch) targeting the same
  element; reported with the colliding (warp, lane) pairs.  The simulator
  resolves these deterministically (last lane wins), but on real hardware
  the winner is undefined — exactly the class of bug racecheck exists for.
* **read-after-write hazards** — a ``gload``/``cload`` of an element
  written earlier in the same launch by a *different* lane without an
  intervening :meth:`~repro.gpusim.kernel.KernelContext.syncthreads`.
  Lockstep NumPy execution hides these; a real grid would not.
* **store/atomic mixing** — ``gstore`` and ``gatomic_add`` on the same
  array within one kernel launch (atomics bypass the write path plain
  stores take; mixing them makes the transaction counters meaningless and
  is undefined on pre-Kepler hardware).
* **uninitialized reads** — via the per-:class:`DeviceArray` shadow
  written-bitmap: loading an element no kernel ever stored and host code
  never staged.  ``Device.alloc(..., init=False)`` gives ``cudaMalloc``
  semantics (contents deterministic zeros, but reading before writing is
  reported).
* **leaks** — :meth:`Device.sanitize_teardown` reports arrays never freed
  and arrays written but never read (dead stores).

All checks raise :class:`~repro.errors.SanitizerError` at the offending
operation with an actionable report; they add zero overhead when
``sanitize=False`` (the default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SanitizerError

#: Maximum offending lane pairs / elements quoted in one report.
MAX_REPORTED = 4


@dataclass(frozen=True)
class SanitizerIssue:
    """One structured sanitizer finding."""

    kind: str  # write-write-race | raw-hazard | mixed-store-atomic |
    #            uninit-read | leak-unfreed | leak-never-read
    array: str
    kernel: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] kernel {self.kernel!r}, "
            f"array {self.array!r}: {self.detail}"
        )


def _lane(tid: int, warp_size: int) -> str:
    return f"thread {tid} (warp {tid // warp_size}, lane {tid % warp_size})"


class Sanitizer:
    """Per-device runtime checker; one instance lives on a sanitizing
    :class:`~repro.gpusim.device.Device` and is consulted by every
    :class:`~repro.gpusim.kernel.KernelContext` memory operation."""

    def __init__(self, device) -> None:
        self.device = device
        self.kernel_name = "<no launch>"
        #: Raised issues, kept for post-mortem inspection.
        self.issues: list[SanitizerIssue] = []
        # Per-launch state: id(arr) -> int64 last-writer lane per element
        # (-1 = unwritten since the last barrier).
        self._writers: dict[int, np.ndarray] = {}
        self._stored: set[int] = set()  # arrays plain-stored this launch
        self._atomic: set[int] = set()  # arrays atomically updated

    # -- launch lifecycle --------------------------------------------------

    def begin_launch(self, kernel_name: str) -> None:
        self.kernel_name = kernel_name
        self._writers.clear()
        self._stored.clear()
        self._atomic.clear()

    def end_launch(self) -> None:
        self.kernel_name = "<no launch>"
        self._writers.clear()
        self._stored.clear()
        self._atomic.clear()

    def barrier(self) -> None:
        """A ``__syncthreads()``: establishes ordering, so the per-launch
        hazard window resets.  The store/atomic mixing sets persist — the
        rule is per kernel, not per barrier interval."""
        self._writers.clear()

    # -- reporting ---------------------------------------------------------

    def _raise(self, kind: str, array_name: str, detail: str) -> None:
        issue = SanitizerIssue(
            kind=kind, array=array_name, kernel=self.kernel_name,
            detail=detail,
        )
        self.issues.append(issue)
        raise SanitizerError(str(issue), issues=[issue])

    # -- checks ------------------------------------------------------------

    def _writer_map(self, arr) -> np.ndarray:
        w = self._writers.get(id(arr))
        if w is None:
            w = np.full(arr.size, -1, dtype=np.int64)
            self._writers[id(arr)] = w
        return w

    def on_load(self, ctx, arr, midx: np.ndarray, live: np.ndarray) -> None:
        """Check a gather (``gload``/``cload``) for uninitialized reads and
        read-after-write hazards."""
        if not live.any():
            return
        tids = np.nonzero(live)[0]
        idx = midx[live]
        ws = ctx.warp_size
        shadow = arr._shadow
        if shadow is not None:
            bad = ~shadow[idx]
            if bad.any():
                samples = ", ".join(
                    f"element {int(idx[i])} read by {_lane(int(tids[i]), ws)}"
                    for i in np.nonzero(bad)[0][:MAX_REPORTED]
                )
                self._raise(
                    "uninit-read", arr.name,
                    f"{int(bad.sum())} lane(s) read elements never written "
                    f"by any kernel store or host staging: {samples}. "
                    f"Mask these lanes inactive or initialize the array "
                    f"(alloc(init=True) / gstore / host .data staging).",
                )
        writers = self._writers.get(id(arr))
        if writers is not None:
            prev = writers[idx]
            conflict = (prev >= 0) & (prev != tids)
            if conflict.any():
                samples = ", ".join(
                    f"element {int(idx[i])} written by "
                    f"{_lane(int(prev[i]), ws)} then read by "
                    f"{_lane(int(tids[i]), ws)}"
                    for i in np.nonzero(conflict)[0][:MAX_REPORTED]
                )
                self._raise(
                    "raw-hazard", arr.name,
                    f"{int(conflict.sum())} read-after-write hazard(s) "
                    f"within one launch: {samples}. Real warps are not "
                    f"globally ordered — split the kernel or insert "
                    f"ctx.syncthreads() between the store and the load.",
                )

    def on_store(self, ctx, arr, midx: np.ndarray, live: np.ndarray) -> None:
        """Check a ``gstore`` for intra-call and cross-call write-write
        races and for mixing with atomics; record the writes."""
        if id(arr) in self._atomic:
            self._raise(
                "mixed-store-atomic", arr.name,
                "gstore after gatomic_add on the same array in one kernel; "
                "pick one access mode per array per launch.",
            )
        self._stored.add(id(arr))
        if not live.any():
            return
        tids = np.nonzero(live)[0]
        idx = midx[live]
        ws = ctx.warp_size
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        dup = np.nonzero(sidx[1:] == sidx[:-1])[0]
        if dup.size:
            samples = ", ".join(
                f"element {int(sidx[d])} stored by both "
                f"{_lane(int(tids[order[d]]), ws)} and "
                f"{_lane(int(tids[order[d + 1]]), ws)}"
                for d in dup[:MAX_REPORTED]
            )
            self._raise(
                "write-write-race", arr.name,
                f"{dup.size} duplicate live store index(es) across lanes "
                f"of one gstore: {samples}. The hardware winner is "
                f"undefined — use gatomic_add or make indices unique.",
            )
        writers = self._writer_map(arr)
        prev = writers[idx]
        conflict = (prev >= 0) & (prev != tids)
        if conflict.any():
            samples = ", ".join(
                f"element {int(idx[i])} stored by {_lane(int(prev[i]), ws)} "
                f"and later by {_lane(int(tids[i]), ws)}"
                for i in np.nonzero(conflict)[0][:MAX_REPORTED]
            )
            self._raise(
                "write-write-race", arr.name,
                f"{int(conflict.sum())} unsynchronized write-write "
                f"conflict(s) across gstore calls in one launch: {samples}. "
                f"Insert ctx.syncthreads() or make the write sets disjoint.",
            )
        writers[idx] = tids
        if arr._shadow is not None:
            arr._shadow[idx] = True

    def on_atomic(self, ctx, arr, midx: np.ndarray, live: np.ndarray) -> None:
        """Record a ``gatomic_add``; duplicate indices are fine (that is
        what atomics are for), but mixing with plain stores is not."""
        if id(arr) in self._stored:
            self._raise(
                "mixed-store-atomic", arr.name,
                "gatomic_add after gstore on the same array in one kernel; "
                "pick one access mode per array per launch.",
            )
        self._atomic.add(id(arr))
        if not live.any():
            return
        tids = np.nonzero(live)[0]
        idx = midx[live]
        writers = self._writer_map(arr)
        writers[idx] = tids
        if arr._shadow is not None:
            arr._shadow[idx] = True


def teardown_issues(device) -> list[SanitizerIssue]:
    """The device-teardown leak check: arrays never freed, and arrays
    written but never read (dead stores).  Works on any device — the
    read/write tallies are kept even without ``sanitize=True``."""
    issues: list[SanitizerIssue] = []
    for arr in device._arrays:
        if not arr.freed:
            issues.append(SanitizerIssue(
                kind="leak-unfreed", array=arr.name, kernel="<teardown>",
                detail=(
                    f"{arr.nbytes} bytes in {arr.space} memory never freed "
                    f"(reads={arr._host_reads + arr._kernel_reads}, "
                    f"writes={arr._writes})"
                ),
            ))
        if (
            arr._writes > 0
            and arr._host_reads + arr._kernel_reads == 0
            and not arr._consumed
        ):
            issues.append(SanitizerIssue(
                kind="leak-never-read", array=arr.name, kernel="<teardown>",
                detail=(
                    f"written {arr._writes} time(s) but never read back "
                    f"(dead stores — drop the array or read its result)"
                ),
            ))
    return issues
