"""``gsnp-lint``: static AST enforcement of the SIMT kernel discipline.

Every paper-level claim this repo reproduces (Table III counters, the
82 vs 3.2 GB/s coalescing gap, bitwise CPU/GPU score consistency) is only
valid if every simulated kernel routes its memory traffic through
:class:`~repro.gpusim.kernel.KernelContext` and follows the lockstep
idiom.  This linter discovers kernel bodies — functions named
``*_kernel`` or passed to ``Device.launch`` / ``DeviceStream.enqueue`` —
and flags violations:

========  ====================  ==============================================
rule id   name                  what it catches
========  ====================  ==============================================
GSNP100   parse-error           file does not parse (reported, not raised)
GSNP101   kernel-data-access    direct ``.data`` / ``flat_view()`` /
                                ``copy_to_host()`` access inside a kernel —
                                traffic the transaction counters never see
GSNP102   kernel-log-call       ``np.log*`` / ``math.log*`` in a kernel body;
                                scores must come from the precomputed
                                ``log_table`` (the paper's contribution 3)
GSNP103   per-thread-loop       Python loops over ``ctx.tid`` /
                                ``range(ctx.n_threads)`` — the anti-lockstep
                                pattern (one iteration per thread)
GSNP104   dropped-active-mask   ``gstore`` / ``gatomic_add`` without an
                                ``active`` argument while a live mask is in
                                scope (write ``active=None`` to assert a
                                deliberate full-warp store)
GSNP105   device-fancy-index    NumPy subscripting of a device array inside
                                a kernel instead of ``ctx.gload``/``gstore``
GSNP106   adhoc-fault-site      fault injection outside the chaos registry:
                                ``fault_point`` with a non-literal or
                                unregistered site, ad-hoc ``if FAULT:``-style
                                flags, or ``FAULT``/``CHAOS`` environment
                                lookups (module-level rule, not kernel-scoped)
GSNP107   fusable-in-window-loop  a launcher registered in
                                ``repro.gpusim.launchplan.FUSABLE_LAUNCHERS``
                                called inside a per-window loop — per-window
                                kernel chains belong on the fused megabatch
                                path (module-level rule, not kernel-scoped)
GSNP108   legacy-pipeline-kwargs  ``create_pipeline`` / ``execute`` /
                                ``ExecConfig`` called with raw legacy keyword
                                arguments instead of a ``spec=JobSpec(...)``;
                                the JobSpec dataclass is the single source of
                                truth for job knobs (module-level rule)
GSNP109   suppression-without-rationale  a ``# gsnp-lint: disable=`` comment
                                with no explanatory comment on the same line
                                or within two lines (opt-in via
                                ``--require-rationale``; enforced in CI)
GSNP110   direct-device-instantiation  ``Device(...)`` constructed directly
                                instead of acquired through
                                ``repro.gpusim.pool`` (``acquire_device`` /
                                ``DevicePool``) — bare devices bypass the
                                shared-link accounting and the pool's
                                residency keying (module-level rule)
GSNP111   per-sample-launcher-loop  a launcher registered in
                                ``FUSABLE_LAUNCHERS`` called inside a
                                per-sample/cohort loop; the sample-major
                                cohort launch plan batches all samples into
                                one launch chain — a Python loop over samples
                                reintroduces O(S x megabatches) launches
                                (module-level rule)
========  ====================  ==============================================

Rules GSNP201–GSNP205 are registered here but emitted by the static
dataflow auditor (:mod:`repro.analyze.dataflow`, the ``gsnp-audit`` CLI);
see that module for their semantics.  All rules share one id space, one
``RULES`` registry, and one suppression mechanism.

Suppress a finding with ``# gsnp-lint: disable=GSNP101`` (rule ids or
names, comma-separated, or ``all``) on the offending line; suppressions
are expected to carry a rationale comment nearby (GSNP109 enforces this
when asked).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .discover import discover_kernels, iter_python_files

#: rule id -> short name (shared by gsnp-lint and gsnp-audit)
RULES: dict[str, str] = {
    "GSNP100": "parse-error",
    "GSNP101": "kernel-data-access",
    "GSNP102": "kernel-log-call",
    "GSNP103": "per-thread-loop",
    "GSNP104": "dropped-active-mask",
    "GSNP105": "device-fancy-index",
    "GSNP106": "adhoc-fault-site",
    "GSNP107": "fusable-in-window-loop",
    "GSNP108": "legacy-pipeline-kwargs",
    "GSNP109": "suppression-without-rationale",
    "GSNP110": "direct-device-instantiation",
    "GSNP111": "per-sample-launcher-loop",
    # -- emitted by gsnp-audit (repro.analyze.dataflow) --------------------
    "GSNP201": "access-pattern-verdict",
    "GSNP202": "static-race",
    "GSNP203": "static-uninit-read",
    "GSNP204": "missing-barrier-hazard",
    "GSNP205": "unproven-access",
}

#: Rules emitted by ``gsnp-lint`` itself (the rest belong to ``gsnp-audit``).
LINT_RULES: frozenset[str] = frozenset(
    r for r in RULES if r < "GSNP200"
)

#: Rules emitted by ``gsnp-audit`` (the dataflow analyzer).
AUDIT_RULES: frozenset[str] = frozenset(
    r for r in RULES if r >= "GSNP200"
)

_RULE_BY_NAME = {name: rid for rid, name in RULES.items()}

_SUPPRESS_RE = re.compile(r"#\s*gsnp-lint:\s*disable=([A-Za-z0-9_\-, ]+)")

_LOG_FUNCS = {"log", "log10", "log2", "log1p"}
_LOG_MODULES = {"np", "numpy", "math"}
_CTX_STORES = {"gstore", "gatomic_add"}
_CTX_MEM = {"gload", "cload", "gstore", "gatomic_add"}
_RAW_ACCESSORS = {"flat_view", "copy_to_host"}
_THREAD_ATTRS = {"tid", "n_threads"}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, pointing at ``path:line:col``.

    ``severity`` is ``"error"`` for findings that fail the build and
    ``"note"`` for informational verdicts (GSNP201 access-pattern
    classifications).  Notes never affect exit codes.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = field(default="error", compare=False)

    def format(self) -> str:
        tag = "" if self.severity == "error" else f" {self.severity}:"
        return (
            f"{self.path}:{self.line}:{self.col}:{tag} "
            f"{self.rule} [{RULES.get(self.rule, '?')}] {self.message}"
        )

    def to_dict(self) -> dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": RULES.get(self.rule, "?"),
            "severity": self.severity,
            "message": self.message,
        }


def normalize_rules(rules: Optional[Iterable[str]]) -> Optional[set[str]]:
    """Map a mix of rule ids and names to a set of rule ids."""
    if rules is None:
        return None
    out = set()
    for r in rules:
        r = r.strip()
        if not r:
            continue
        if r in RULES:
            out.add(r)
        elif r in _RULE_BY_NAME:
            out.add(_RULE_BY_NAME[r])
        else:
            raise ValueError(
                f"unknown lint rule {r!r}; valid rules: "
                + ", ".join(f"{k} ({v})" for k, v in RULES.items())
            )
    return out


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> set of suppressed rule tokens (``all`` wildcard)."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            toks = {t.strip() for t in m.group(1).split(",") if t.strip()}
            out[lineno] = toks
    return out


def _is_suppressed(
    diag: Diagnostic, suppressions: dict[int, set[str]]
) -> bool:
    toks = suppressions.get(diag.line)
    if not toks:
        return False
    return (
        "all" in toks
        or diag.rule in toks
        or RULES.get(diag.rule, "") in toks
    )


def _annotation_names(node: Optional[ast.expr]) -> set[str]:
    if node is None:
        return set()
    return {
        n.id for n in ast.walk(node) if isinstance(n, ast.Name)
    } | {
        n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)
    }


def _call_is_ctx_mem(node: ast.Call) -> Optional[str]:
    """Return the method name when ``node`` is a ``<recv>.g{load,store,...}``
    routed-memory call."""
    if isinstance(node.func, ast.Attribute) and node.func.attr in _CTX_MEM:
        return node.func.attr
    return None


class _KernelChecker:
    """Scan one kernel body in source order (pre-order traversal)."""

    def __init__(self, kernel: ast.FunctionDef, path: str) -> None:
        self.kernel = kernel
        self.path = path
        self.diags: list[Diagnostic] = []
        self.mask_names = self._collect_mask_names()
        args = kernel.args
        self.param_ids = {
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        self.device_names = self._collect_device_names()
        self.seen_masks: list[str] = []

    # -- pre-passes --------------------------------------------------------

    def _collect_mask_names(self) -> set[str]:
        """Names ever passed as ``active=<name>`` in a routed call, plus the
        conventional name ``active`` itself."""
        names = {"active"}
        for node in ast.walk(self.kernel):
            if isinstance(node, ast.Call) and _call_is_ctx_mem(node):
                for kw in node.keywords:
                    if kw.arg == "active" and isinstance(kw.value, ast.Name):
                        names.add(kw.value.id)
        return names

    def _collect_device_names(self) -> set[str]:
        """Kernel parameters that are device arrays: annotated DeviceArray,
        or used as the array operand of a routed memory call."""
        args = self.kernel.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        names = {
            a.arg
            for a in params
            if "DeviceArray" in _annotation_names(a.annotation)
        }
        for node in ast.walk(self.kernel):
            if isinstance(node, ast.Call) and _call_is_ctx_mem(node):
                if node.args and isinstance(node.args[0], ast.Name):
                    if node.args[0].id in self.param_ids:
                        names.add(node.args[0].id)
        return names

    # -- reporting ---------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.diags.append(Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", self.kernel.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        ))

    # -- traversal ---------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for stmt in self.kernel.body:
            self._visit(stmt)
        return self.diags

    def _note_mask_binding(self, target: ast.AST) -> None:
        for n in ast.walk(target):
            if isinstance(n, ast.Name) and n.id in self.mask_names:
                if n.id not in self.seen_masks:
                    self.seen_masks.append(n.id)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are kernel helper code: scan their bodies too.
            for stmt in node.body:
                self._visit(stmt)
            return
        if isinstance(node, ast.Assign):
            for t in node.targets:
                self._note_mask_binding(t)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._note_mask_binding(node.target)
        elif isinstance(node, ast.NamedExpr):
            self._note_mask_binding(node.target)
        elif isinstance(node, ast.For):
            self._check_for(node)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        elif isinstance(node, ast.Attribute):
            self._check_attribute(node)
        elif isinstance(node, ast.Subscript):
            self._check_subscript(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- rules -------------------------------------------------------------

    def _check_attribute(self, node: ast.Attribute) -> None:
        if node.attr == "data":
            self._flag(
                node, "GSNP101",
                "direct '.data' access inside kernel "
                f"'{self.kernel.name}' bypasses transaction counting; "
                "route the access through ctx.gload/ctx.gstore",
            )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _RAW_ACCESSORS:
                self._flag(
                    node, "GSNP101",
                    f"'{func.attr}()' inside kernel '{self.kernel.name}' "
                    "bypasses transaction counting; route the access "
                    "through ctx.gload/ctx.gstore",
                )
            if (
                func.attr in _LOG_FUNCS
                and isinstance(func.value, ast.Name)
                and func.value.id in _LOG_MODULES
            ):
                self._flag(
                    node, "GSNP102",
                    f"'{func.value.id}.{func.attr}' in kernel "
                    f"'{self.kernel.name}': scores must come from the "
                    "precomputed log_table (ctx.cload), not runtime logs",
                )
            if func.attr in _CTX_STORES:
                self._check_store_mask(node, func.attr)
        elif isinstance(func, ast.Name) and func.id in _LOG_FUNCS:
            self._flag(
                node, "GSNP102",
                f"'{func.id}' call in kernel '{self.kernel.name}': scores "
                "must come from the precomputed log_table (ctx.cload), "
                "not runtime logs",
            )

    def _check_store_mask(self, node: ast.Call, method: str) -> None:
        has_active = len(node.args) >= 4 or any(
            kw.arg == "active" for kw in node.keywords
        )
        if not has_active and self.seen_masks:
            live = ", ".join(repr(m) for m in self.seen_masks)
            self._flag(
                node, "GSNP104",
                f"'{method}' drops the live active mask ({live}) in kernel "
                f"'{self.kernel.name}'; pass active=<mask>, or active=None "
                "to assert a deliberate full-warp store",
            )

    def _check_for(self, node: ast.For) -> None:
        offenders = [
            n for n in ast.walk(node.iter)
            if isinstance(n, ast.Attribute) and n.attr in _THREAD_ATTRS
        ]
        if offenders:
            self._flag(
                node, "GSNP103",
                f"per-thread Python loop in kernel '{self.kernel.name}' "
                "(iterates over ctx.tid / ctx.n_threads); write the body "
                "as one lockstep vector operation instead",
            )

    def _check_subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.value, ast.Name):
            return
        # Either a known device array, or any kernel parameter indexed by a
        # per-thread expression (the subscript itself is the evidence).
        tid_indexed = node.value.id in self.param_ids and any(
            isinstance(n, ast.Attribute) and n.attr == "tid"
            for n in ast.walk(node.slice)
        )
        if node.value.id in self.device_names or tid_indexed:
            self._flag(
                node, "GSNP105",
                f"NumPy indexing of device array '{node.value.id}' in "
                f"kernel '{self.kernel.name}' bypasses coalescing "
                "analysis; use ctx.gload/ctx.gstore with an index vector",
            )


class _FaultSiteChecker(ast.NodeVisitor):
    """GSNP106: every fault enters through the chaos registry.

    Module-level (not kernel-scoped).  Flags:

    * ``fault_point(site, ...)`` where ``site`` is not a string literal —
      the registry cannot be audited statically otherwise;
    * a literal site not present in :data:`repro.faults.plan.SITES`;
    * ad-hoc injection flags: an ``if`` test referencing an ALL-CAPS name
      starting with ``FAULT``/``CHAOS``/``INJECT``;
    * ``os.environ`` / ``os.getenv`` lookups of ``FAULT``/``CHAOS``/
      ``INJECT`` keys — environment-driven fault switches are
      nondeterministic by construction.

    Lowercase uses (``config.faults``, ``inject_failures=...``) are fine:
    those are the registry's own plumbing, not bypasses.
    """

    _FLAG_RE = re.compile(r"^(FAULT|CHAOS|INJECT)")
    _ENV_RE = re.compile(r"FAULT|CHAOS|INJECT", re.IGNORECASE)

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.diags.append(Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule="GSNP106",
            message=message,
        ))

    @staticmethod
    def _is_environ(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "environ"

    def _check_env_key(self, key: Optional[ast.expr], node: ast.AST) -> None:
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and self._ENV_RE.search(key.value)
        ):
            self._flag(
                node,
                f"environment-driven fault switch {key.value!r}; schedule "
                "faults through a FaultPlan and fault_point() instead",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "fault_point":
            self._check_fault_point(node)
        elif name == "getenv":
            self._check_env_key(node.args[0] if node.args else None, node)
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and self._is_environ(func.value)
        ):
            self._check_env_key(node.args[0] if node.args else None, node)
        self.generic_visit(node)

    def _check_fault_point(self, node: ast.Call) -> None:
        site = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "site":
                site = kw.value
        if not (isinstance(site, ast.Constant) and isinstance(site.value, str)):
            self._flag(
                node,
                "fault_point() site must be a string literal from the "
                "repro.faults.plan.SITES registry (found a computed site)",
            )
            return
        from ..faults.plan import SITES

        if site.value not in SITES:
            self._flag(
                node,
                f"fault_point() site {site.value!r} is not in the "
                "repro.faults.plan.SITES registry; register it there "
                "before injecting",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_environ(node.value):
            self._check_env_key(node.slice, node)
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        for n in ast.walk(node.test):
            nm = None
            if isinstance(n, ast.Name):
                nm = n.id
            elif isinstance(n, ast.Attribute):
                nm = n.attr
            if nm and self._FLAG_RE.match(nm) and nm.isupper():
                self._flag(
                    n,
                    f"ad-hoc fault flag {nm!r}; inject through "
                    "fault_point() at a registered site so schedules stay "
                    "deterministic and auditable",
                )
        self.generic_visit(node)


class _FusableLoopChecker(ast.NodeVisitor):
    """GSNP107: fusable launchers must not run once per window.

    Module-level (not kernel-scoped).  A *window loop* is a ``for`` whose
    target binds a window-like name (``for window in ...``) or whose
    iterable is a bare name/attribute containing ``window``
    (``for w in windows``).  Calls inside such a loop to any launcher in
    :data:`repro.gpusim.launchplan.FUSABLE_LAUNCHERS` are flagged: that
    device work has a megabatch equivalent on the fused path, and a
    per-window launch chain silently reintroduces the launch-granularity
    cost the launch-plan scheduler exists to remove.  The reference
    per-window pipeline (kept as the fusion parity baseline) carries
    explicit suppressions.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []

    @staticmethod
    def _is_window_loop(node: ast.For) -> bool:
        names = [
            n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)
        ]
        it = node.iter
        if isinstance(it, ast.Name):
            names.append(it.id)
        elif isinstance(it, ast.Attribute):
            names.append(it.attr)
        return any("window" in nm.lower() for nm in names)

    def visit_For(self, node: ast.For) -> None:
        if self._is_window_loop(node):
            from ..gpusim.launchplan import FUSABLE_LAUNCHERS

            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in FUSABLE_LAUNCHERS:
                    self.diags.append(Diagnostic(
                        path=self.path,
                        line=getattr(sub, "lineno", node.lineno),
                        col=getattr(sub, "col_offset", 0) + 1,
                        rule="GSNP107",
                        message=(
                            f"fusable launcher '{name}' called inside a "
                            "per-window loop; route this work through the "
                            "megabatch launch plan "
                            "(repro.gpusim.launchplan) instead of "
                            "launching once per window"
                        ),
                    ))
        self.generic_visit(node)


class _SampleLoopChecker(ast.NodeVisitor):
    """GSNP111: fusable launchers must not run once per cohort sample.

    Module-level (not kernel-scoped); the cohort-mode sibling of GSNP107.
    A *sample loop* is a ``for`` whose target binds a sample-like name
    (``for sample in ...``) or whose iterable is a bare name/attribute
    containing ``sample`` or ``cohort`` (``for b in sample_reads``).
    Calls inside such a loop to any launcher in
    :data:`repro.gpusim.launchplan.FUSABLE_LAUNCHERS` are flagged: the
    sample-major cohort launch plan (``build_cohort_plan``) evaluates all
    S samples in one launch chain per megabatch, so a Python loop over
    samples around device launches silently reintroduces the
    O(S x megabatches) launch cost the cohort mode exists to remove.
    (A loop over whole solo *runs* — the parity baseline — never calls a
    launcher directly and is not flagged.)
    """

    _LOOP_WORDS = ("sample", "cohort")

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []

    @classmethod
    def _is_sample_loop(cls, node: ast.For) -> bool:
        names = [
            n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)
        ]
        it = node.iter
        if isinstance(it, ast.Name):
            names.append(it.id)
        elif isinstance(it, ast.Attribute):
            names.append(it.attr)
        return any(
            word in nm.lower() for nm in names for word in cls._LOOP_WORDS
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_sample_loop(node):
            from ..gpusim.launchplan import FUSABLE_LAUNCHERS

            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in FUSABLE_LAUNCHERS:
                    self.diags.append(Diagnostic(
                        path=self.path,
                        line=getattr(sub, "lineno", node.lineno),
                        col=getattr(sub, "col_offset", 0) + 1,
                        rule="GSNP111",
                        message=(
                            f"fusable launcher '{name}' called inside a "
                            "per-sample loop; build a sample-major cohort "
                            "launch plan (build_cohort_plan) so all "
                            "samples share one launch chain per megabatch"
                        ),
                    ))
        self.generic_visit(node)


class _LegacySpecChecker(ast.NodeVisitor):
    """GSNP108: job knobs travel as a JobSpec, not loose kwargs.

    Module-level (not kernel-scoped).  Flags any call to
    ``create_pipeline``, ``execute`` or ``ExecConfig`` that passes one of
    the superseded per-knob keyword arguments without also passing
    ``spec=``.  Those spellings still work (through the deprecation
    shim), but every knob has exactly one home — a
    :class:`repro.api.JobSpec` field — and new call sites must use it.
    The shim itself carries an explicit suppression.
    """

    _TARGETS = ("create_pipeline", "execute", "ExecConfig")
    _LEGACY = frozenset({
        "window_size", "variant", "prefetch", "cache", "fusion",
        "megabatch", "workers", "shard_size", "shard_timeout",
        "journal_dir", "resume", "quarantine", "faults", "max_retries",
        "backlog", "force_serial", "backoff_base", "inject_failures",
    })

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in self._TARGETS:
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            legacy = sorted(kwargs & self._LEGACY)
            if legacy and "spec" not in kwargs:
                self.diags.append(Diagnostic(
                    path=self.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule="GSNP108",
                    message=(
                        f"'{name}' called with legacy kwarg(s) "
                        f"{', '.join(legacy)}; pass spec=JobSpec(...) — "
                        "the JobSpec dataclass is the single source of "
                        "truth for job knobs"
                    ),
                ))
        self.generic_visit(node)


class _DeviceInstantiationChecker(ast.NodeVisitor):
    """GSNP110: devices are acquired from the pool, not constructed.

    Module-level (not kernel-scoped).  Flags any call spelled
    ``Device(...)`` or ``<mod>.Device(...)``: a bare device has no
    :class:`~repro.gpusim.pool.HostLink` (its transfers escape the
    shared-link contention accounting) and no pool device id (its
    residency cache can collide with a pool device's).  Acquire through
    :func:`repro.gpusim.pool.acquire_device` or
    :class:`repro.gpusim.pool.DevicePool` instead; the pool module's own
    constructor calls carry explicit suppressions, as do harness/test
    sites that deliberately measure an unpooled device.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.diags: list[Diagnostic] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "Device":
            self.diags.append(Diagnostic(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule="GSNP110",
                message=(
                    "direct Device(...) instantiation bypasses the device "
                    "pool; acquire through repro.gpusim.pool.acquire_device"
                    " (or DevicePool) so transfers share the modeled host "
                    "link and residency is keyed by device identity"
                ),
            ))
        self.generic_visit(node)


_MIN_RATIONALE_WORDS = 3
_RATIONALE_WINDOW_ABOVE = 2
_RATIONALE_WINDOW_BELOW = 1
_WORD_RE = re.compile(r"[A-Za-z0-9']+")


def _comment_words(text: str) -> int:
    """Count rationale words in the comment portion of a source line,
    excluding any suppression directive itself."""
    hash_pos = text.find("#")
    if hash_pos < 0:
        return 0
    comment = text[hash_pos:]
    comment = _SUPPRESS_RE.sub("", comment)
    return len(_WORD_RE.findall(comment))


def rationale_diagnostics(source: str, path: str) -> list[Diagnostic]:
    """GSNP109: every suppression directive must carry a rationale.

    A rationale is a comment with at least :data:`_MIN_RATIONALE_WORDS`
    words on the directive's own line (after the directive) or within two
    lines above / one line below it.  Suppressing a rule without saying
    why leaves the next reader unable to tell a sound exemption from a
    stale one.
    """
    lines = source.splitlines()
    diags: list[Diagnostic] = []
    for lineno, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        if _comment_words(text) >= _MIN_RATIONALE_WORDS:
            continue
        lo = max(1, lineno - _RATIONALE_WINDOW_ABOVE)
        hi = min(len(lines), lineno + _RATIONALE_WINDOW_BELOW)
        neighbors = [
            lines[i - 1] for i in range(lo, hi + 1) if i != lineno
        ]
        if any(
            _comment_words(nb) >= _MIN_RATIONALE_WORDS for nb in neighbors
        ):
            continue
        diags.append(Diagnostic(
            path=path, line=lineno, col=text.find("#") + 2,
            rule="GSNP109",
            message=(
                f"suppression '{m.group(0).strip()}' has no nearby "
                "rationale; add a comment (same line or within two lines) "
                "explaining why the rule does not apply here"
            ),
        ))
    return diags


def lint_source(
    source: str,
    path: str = "<string>",
    require_rationale: bool = False,
) -> list[Diagnostic]:
    """Lint one module's source; returns sorted, suppression-filtered
    diagnostics (a syntax error yields a single GSNP100 diagnostic)."""
    suppressions = _suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_diag = Diagnostic(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule="GSNP100", message=f"file does not parse: {exc.msg}",
        )
        if _is_suppressed(parse_diag, suppressions):
            return []
        return [parse_diag]
    diags: set[Diagnostic] = set()
    for kernel in discover_kernels(tree).kernels:
        for d in _KernelChecker(kernel, path).run():
            if not _is_suppressed(d, suppressions):
                diags.add(d)
    for checker in (
        _FaultSiteChecker(path),
        _FusableLoopChecker(path),
        _SampleLoopChecker(path),
        _LegacySpecChecker(path),
        _DeviceInstantiationChecker(path),
    ):
        checker.visit(tree)
        for d in checker.diags:
            if not _is_suppressed(d, suppressions):
                diags.add(d)
    if require_rationale:
        for d in rationale_diagnostics(source, path):
            if not _is_suppressed(d, suppressions):
                diags.add(d)
    return sorted(diags)


def lint_file(
    path: Union[str, Path], require_rationale: bool = False
) -> list[Diagnostic]:
    """Lint one ``.py`` file."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"), str(p),
        require_rationale=require_rationale,
    )


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    require_rationale: bool = False,
) -> list[Diagnostic]:
    """Lint files and/or directory trees of ``.py`` files.

    ``select`` restricts to, and ``ignore`` drops, the given rule ids or
    names (e.g. ``["GSNP104"]`` or ``["dropped-active-mask"]``).
    ``require_rationale`` additionally fires GSNP109 on suppression
    directives with no nearby explanatory comment.
    """
    sel = normalize_rules(select)
    ign = normalize_rules(ignore) or set()
    out: list[Diagnostic] = []
    for f in iter_python_files(paths):
        for d in lint_file(f, require_rationale=require_rationale):
            if sel is not None and d.rule not in sel:
                continue
            if d.rule in ign:
                continue
            out.append(d)
    return out
